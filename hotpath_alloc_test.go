package bench

// Zero-allocation guardrails for the steady-state per-packet paths. These
// are tests, not benchmarks, so `go test ./...` (tier 1) catches an
// allocation regression even when nobody runs `make bench`: after warmup,
// advancing the simulation must not allocate on the port→link→receive path
// nor on the loss-notification→Tx-buffer→retransmission path.

import (
	"testing"

	"linkguardian/internal/core"
	"linkguardian/internal/experiments"
	"linkguardian/internal/simnet"
	"linkguardian/internal/simtime"
)

// allocSlice is sized so one measured run carries ~800 packets — large
// enough that any per-packet allocation shows up as hundreds of allocs per
// run, small enough that the test stays fast.
const allocSlice = 100 * simtime.Microsecond

func measureHotPathAllocs(t *testing.T, loss float64) float64 {
	t.Helper()
	cfg := core.NewConfig(simtime.Rate100G, loss)
	cfg.Mode = core.Ordered
	tb := experiments.NewTestbed(1, simtime.Rate100G, cfg)
	tb.SetLoss(loss)
	tb.LG.Enable()
	tb.CountReceived()
	// Finite switch buffer, as in the benchmark: the generator is PFC-
	// oblivious, so without a cap the paused backlog grows without bound
	// and its growth reads as hot-path allocation.
	tb.Link.A().Port.Q(simnet.PrioNormal).MaxBytes = 256 << 10
	gen := tb.StartGeneratorAt(1500, 0.98)
	defer gen.Stop()
	// Warm up pools, queues and the event heap to their high-water marks.
	for i := 0; i < 4; i++ {
		tb.Sim.RunFor(simtime.Millisecond)
	}
	return testing.AllocsPerRun(20, func() {
		tb.Sim.RunFor(allocSlice)
	})
}

// The clean steady-state path — generator → egress queue → wire → receiver
// → forward → sink — must be allocation-free per packet.
func TestHotPathZeroAllocClean(t *testing.T) {
	if avg := measureHotPathAllocs(t, 0); avg != 0 {
		t.Fatalf("clean hot path allocates: %.2f allocs per %v slice (~800 pkts)", avg, allocSlice)
	}
}

// The recovery path — corruption drop, loss notification, Tx-buffer claim,
// high-priority retransmission, reordering-buffer release — must also be
// allocation-free once pools are warm. At 1e-3 loss each measured slice
// carries ~1 loss event; averaging over 20 runs exercises the full
// machinery. A fraction of an alloc per run is tolerated for rare
// amortized growth (map resizing at a new high-water mark); a per-packet
// or per-loss regression shows up as hundreds.
func TestSenderRetxPathZeroAlloc(t *testing.T) {
	if avg := measureHotPathAllocs(t, 1e-3); avg >= 1 {
		t.Fatalf("lossy hot path allocates: %.2f allocs per %v slice (~800 pkts, ~1 loss)", avg, allocSlice)
	}
}
