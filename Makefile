GO ?= go

.PHONY: all tier1 build vet test race bench bench-smoke bench-par-smoke bench-live-smoke chaos cover fuzz live-smoke fleet-smoke results-smoke clean

all: tier1

# Tier-1 verification: the gate every change must keep green.
tier1:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test ./...

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race job for the concurrent packages: the parallel engine itself, the
# experiment layer that fans out across it, and the sharded simulation
# engine's determinism regressions (worker/shard invariance is exactly the
# property a data race would break first). Runs are filtered to the
# multi-worker tests because the full suite under -race takes many minutes.
race:
	$(GO) test -race ./internal/parallel
	$(GO) test -race -run 'TestParallel.*MatchesSerial|TestFabricStressShardInvariance' ./internal/experiments
	$(GO) test -race -run 'TestEngine' ./internal/simnet
	$(GO) test -race -run 'TestFleetWorkerInvariance' ./internal/fleetsim
	$(GO) test -race -count=1 ./internal/live
	$(GO) test -race -count=1 ./internal/results

# Full hot-path benchmarks (sequential + sharded-parallel engines) plus
# the fleet-simulation matrix; time-based samples, best-of-3 with recorded
# variance, written as BENCH_8.json at the repository root.
bench:
	./scripts/bench.sh
	$(GO) test -bench . -run '^$$' ./internal/eventq

# CI gates: one benchmark iteration, failing if allocs/op regresses against
# the committed budgets in scripts/bench_baseline.txt. Throughput is not
# gated (machine-dependent); the allocation count is deterministic.
# bench-smoke covers the sequential engine, bench-par-smoke the sharded
# parallel engine's cross-shard handoff path.
bench-smoke:
	./scripts/benchsmoke.sh

bench-par-smoke:
	./scripts/benchsmoke.sh BenchmarkParHotPath_PktsPerSec

# Ratcheted per-package coverage gate. Floors live in
# scripts/coverage_thresholds.txt; raise them as coverage improves.
cover:
	./scripts/covercheck.sh

# Fuzz smoke pass: ~40s total across the native fuzz targets. The
# checked-in crasher corpus under testdata/fuzz/ also runs during plain
# `go test`, so regressions are caught even without -fuzz.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzVote -fuzztime 8s ./internal/attrib
	$(GO) test -run '^$$' -fuzz FuzzSeqCompare -fuzztime 8s ./internal/seqnum
	$(GO) test -run '^$$' -fuzz FuzzLGDataWire -fuzztime 7s ./internal/simnet
	$(GO) test -run '^$$' -fuzz FuzzLGAckWire -fuzztime 7s ./internal/simnet
	$(GO) test -run '^$$' -fuzz FuzzTraceEventString -fuzztime 8s ./internal/simnet
	$(GO) test -run '^$$' -fuzz FuzzLinkLifecycle -fuzztime 10s ./internal/fleetsim

# Fleet-simulation smoke gate: the full solution matrix on a small fleet,
# with the engine re-rendering the Pareto table at -workers 1/2/4/8 and
# failing on any byte difference (the worker-invariance contract, exercised
# end to end through cmd/fleetsim rather than the unit test).
fleet-smoke:
	$(GO) run ./cmd/fleetsim -solutions all -links 20000 -years 0.25 -invariance

# Chaos robustness gate: the curated fault scenarios plus a fixed-seed,
# fixed-budget randomized sweep. Failures reproduce exactly from the index
# the report names: go run ./cmd/chaos -gen <i> -seed 20230823.
# The composite-family soak (17 per family x 3 families = 51 scenarios) runs
# under the race detector: the families carry stateful faults (correlated
# GE chains, congestion generators) whose cloning discipline is exactly what
# a race would break. The attribution smoke gates single-culprit top-1
# accuracy against the recorded baseline in scripts/attrib_baseline.txt.
chaos:
	$(GO) run ./cmd/chaos -scenario quiet -seed 1
	$(GO) run ./cmd/chaos -scenario spike -seed 1
	$(GO) run ./cmd/chaos -scenario burst -seed 1
	$(GO) run ./cmd/chaos -scenario flap -seed 1
	$(GO) run ./cmd/chaos -scenario ctrl-storm -seed 1
	$(GO) run ./cmd/chaos -scenario storm -seed 1
	$(GO) run ./cmd/chaos -scenario era-wrap -seed 1
	$(GO) run ./cmd/chaos -soak 200 -seed 20230823
	$(GO) run -race ./cmd/chaos -families 17 -seed 20230823
	$(GO) run ./cmd/chaos -attrib 10 -attrib-multi 4 -seed 20230823 \
		-attrib-min $$(grep -v '^\#' scripts/attrib_baseline.txt)

# Live dataplane smoke tests, race detector on, strict exit codes: first
# the single-link lglive loopback demo — real UDP sockets, impairment
# proxy at 1e-3 loss — then the multi-tenant daemon, eight links sharing
# one batched mux socket pair with a 1000-flow load generator spread
# across them. Both must mask every drop (zero app-visible loss,
# duplicates or reordering on every link) and shut down cleanly within
# the deadline. ~10s of offered traffic each; rates kept modest because
# the race detector cuts the loop's event budget roughly 10x.
live-smoke:
	$(GO) run -race ./cmd/lglive -mode=demo -count 100000 -pps 10000 \
		-size 512 -loss 1e-3 -seed 42 -strict
	$(GO) run -race ./cmd/lglive -mode=multi -links 8 -flows 1000 \
		-count 60000 -pps 6000 -size 256 -loss 1e-3 -seed 42 -strict

# bench-live-smoke gates the batched mux wire path at zero steady-state
# allocations (budget in scripts/bench_baseline.txt).
bench-live-smoke:
	./scripts/benchsmoke.sh BenchmarkLiveWire_PktsPerSec ./internal/live

# Experiment-results service gate: ingest -> query -> diff round trip
# through the real CLI on the file backend plus the unit goldens on the
# in-memory backend, byte-checked against internal/results/testdata/.
results-smoke:
	./scripts/results_smoke.sh

clean:
	$(GO) clean ./...
