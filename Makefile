GO ?= go

.PHONY: all tier1 build vet test race bench chaos clean

all: tier1

# Tier-1 verification: the gate every change must keep green.
tier1:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test ./...

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race job for the concurrent packages: the parallel engine itself and the
# experiment layer that fans out across it. The experiments run is filtered
# to the determinism tests (the ones that exercise multi-worker execution)
# because the full suite under -race takes many minutes.
race:
	$(GO) test -race ./internal/parallel
	$(GO) test -race -run 'TestParallel.*MatchesSerial' ./internal/experiments

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .
	$(GO) test -bench . -run '^$$' ./internal/eventq

# Chaos robustness gate: the curated fault scenarios plus a fixed-seed,
# fixed-budget randomized sweep. Failures reproduce exactly from the index
# the report names: go run ./cmd/chaos -gen <i> -seed 20230823.
chaos:
	$(GO) run ./cmd/chaos -scenario quiet -seed 1
	$(GO) run ./cmd/chaos -scenario spike -seed 1
	$(GO) run ./cmd/chaos -scenario burst -seed 1
	$(GO) run ./cmd/chaos -scenario flap -seed 1
	$(GO) run ./cmd/chaos -scenario ctrl-storm -seed 1
	$(GO) run ./cmd/chaos -scenario storm -seed 1
	$(GO) run ./cmd/chaos -scenario era-wrap -seed 1
	$(GO) run ./cmd/chaos -soak 200 -seed 20230823

clean:
	$(GO) clean ./...
