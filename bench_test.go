// Package bench is the benchmark harness that regenerates every table and
// figure of the paper's evaluation (see DESIGN.md §3 for the experiment
// index and EXPERIMENTS.md for paper-vs-measured results). Each benchmark
// runs a scaled-down instance of the corresponding experiment and reports
// its headline metrics via b.ReportMetric; cmd/paper prints the full rows.
//
// Run with: go test -bench=. -benchmem
package bench

import (
	"math/rand"
	"testing"
	"time"

	"linkguardian/internal/core"
	"linkguardian/internal/corropt"
	"linkguardian/internal/experiments"
	"linkguardian/internal/fabric"
	"linkguardian/internal/failtrace"
	"linkguardian/internal/phy"
	"linkguardian/internal/simtime"
	"linkguardian/internal/workload"
)

// ---------------------------------------------------------- Figures 1-2 --

func BenchmarkFigure1_AttenuationLoss(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		for _, tr := range phy.AllTransceivers {
			for _, p := range phy.Figure1Series(tr, 9, 18, 0.25) {
				last = p.LossRate
			}
		}
	}
	b.ReportMetric(last, "final-loss-rate")
}

func BenchmarkFigure2_FlowSizeCDFs(b *testing.B) {
	single := 0.0
	for i := 0; i < b.N; i++ {
		for _, w := range workload.All() {
			w.CDFSeries(1, 30e6, 64)
			single = w.FractionWithin(1448)
		}
	}
	b.ReportMetric(single, "last-single-pkt-frac")
}

func BenchmarkTable1_LossBuckets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table1(100000, int64(i)+1)
	}
}

// ----------------------------------------------------- Figure 8 family --

func stressOpts() experiments.StressOpts {
	o := experiments.DefaultStressOpts()
	o.Duration = 5 * simtime.Millisecond
	return o
}

func BenchmarkFigure8_EffectiveLossAndSpeed(b *testing.B) {
	var lg, nb experiments.StressResult
	for i := 0; i < b.N; i++ {
		nb = experiments.RunStress(simtime.Rate100G, 1e-3, core.NonBlocking, stressOpts())
		lg = experiments.RunStress(simtime.Rate100G, 1e-3, core.Ordered, stressOpts())
	}
	b.ReportMetric(lg.EffSpeedFrac*100, "LG-effspeed-%")
	b.ReportMetric(nb.EffSpeedFrac*100, "LGNB-effspeed-%")
	b.ReportMetric(lg.EffLossAnalytic, "effloss-analytic")
}

func BenchmarkFigure14_BufferUsage(b *testing.B) {
	var r experiments.StressResult
	for i := 0; i < b.N; i++ {
		r = experiments.RunStress(simtime.Rate100G, 1e-3, core.Ordered, stressOpts())
	}
	b.ReportMetric(r.TxBuf.P50/1024, "txbuf-p50-KB")
	b.ReportMetric(r.RxBuf.P50/1024, "rxbuf-p50-KB")
}

func BenchmarkFigure19_ReTxDelay(b *testing.B) {
	var r experiments.StressResult
	for i := 0; i < b.N; i++ {
		r = experiments.RunStress(simtime.Rate25G, 1e-3, core.Ordered, stressOpts())
	}
	b.ReportMetric(r.RetxDelays.Percentile(50), "retx-delay-p50-us")
	b.ReportMetric(r.RetxDelays.Max(), "retx-delay-max-us")
}

func BenchmarkTable4_RecircOverhead(b *testing.B) {
	var r experiments.StressResult
	for i := 0; i < b.N; i++ {
		r = experiments.RunStress(simtime.Rate100G, 1e-3, core.Ordered, stressOpts())
	}
	b.ReportMetric(r.RecircTx*100, "recirc-tx-%")
	b.ReportMetric(r.RecircRx*100, "recirc-rx-%")
}

// ------------------------------------------------------------- Figure 9 --

func BenchmarkFigure9_DCTCPTimeline(b *testing.B) {
	var a, bb experiments.TimelineResult
	for i := 0; i < b.N; i++ {
		a, bb = experiments.Figure9()
	}
	b.ReportMetric(a.LGGbps, "9a-LG-Gbps")
	b.ReportMetric(bb.LGGbps, "9b-noBP-Gbps")
	b.ReportMetric(float64(bb.RxBufOverflows), "9b-overflows")
}

func BenchmarkFigure21_CubicBBRTimeline(b *testing.B) {
	var cu, bbr experiments.TimelineResult
	for i := 0; i < b.N; i++ {
		cu, bbr = experiments.Figure21()
	}
	b.ReportMetric(cu.LGGbps, "cubic-LG-Gbps")
	b.ReportMetric(bbr.LGGbps, "bbr-LG-Gbps")
}

// ----------------------------------------------------- FCT experiments --

const benchTrials = 5000

func BenchmarkFigure10_OnePacketFCT(b *testing.B) {
	var loss, lg experiments.FCTResult
	for i := 0; i < b.N; i++ {
		opts := experiments.DefaultFCTOpts(143)
		opts.Trials = benchTrials
		loss = experiments.RunFCT(experiments.TransDCTCP, experiments.LossOnly, opts)
		lg = experiments.RunFCT(experiments.TransDCTCP, experiments.LG, opts)
	}
	b.ReportMetric(loss.P(99.99), "loss-p9999-us")
	b.ReportMetric(lg.P(99.99), "LG-p9999-us")
}

func BenchmarkFigure11_MultiPacketFCT(b *testing.B) {
	var loss, lg experiments.FCTResult
	for i := 0; i < b.N; i++ {
		opts := experiments.DefaultFCTOpts(24387)
		opts.Trials = benchTrials
		loss = experiments.RunFCT(experiments.TransRDMA, experiments.LossOnly, opts)
		lg = experiments.RunFCT(experiments.TransRDMA, experiments.LG, opts)
	}
	b.ReportMetric(loss.P(99.9), "rdma-loss-p999-us")
	b.ReportMetric(lg.P(99.9), "rdma-LG-p999-us")
}

func BenchmarkFigure12_LargeFlowFCT(b *testing.B) {
	var loss, lg experiments.FCTResult
	for i := 0; i < b.N; i++ {
		opts := experiments.DefaultFCTOpts(2 << 20)
		opts.Trials = 300
		loss = experiments.RunFCT(experiments.TransDCTCP, experiments.LossOnly, opts)
		lg = experiments.RunFCT(experiments.TransDCTCP, experiments.LG, opts)
	}
	b.ReportMetric(loss.P(99), "2MB-loss-p99-us")
	b.ReportMetric(lg.P(99), "2MB-LG-p99-us")
}

func BenchmarkFigure13_FlowClassification(b *testing.B) {
	var r experiments.Figure13Result
	for i := 0; i < b.N; i++ {
		r = experiments.Figure13(benchTrials)
	}
	b.ReportMetric(float64(r.Affected), "affected")
	b.ReportMetric(float64(r.GrpD), "groupD")
}

func BenchmarkTable2_MechanismAblation(b *testing.B) {
	var rows []experiments.Table2Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Table2(benchTrials)
	}
	for _, r := range rows {
		if r.Name == "Loss" {
			b.ReportMetric(r.P999, "loss-p999-us")
		}
		if r.Name == "ReTx+Tail+Order" {
			b.ReportMetric(r.P999, "full-p999-us")
		}
	}
}

// ------------------------------------------------------------- Table 3 --

func BenchmarkTable3_WharfComparison(b *testing.B) {
	var rows []experiments.Table3Row
	for i := 0; i < b.N; i++ {
		opts := experiments.DefaultTable3Opts()
		opts.FlowBytes = 4 << 20
		rows = experiments.Table3(opts)
	}
	for _, r := range rows {
		switch r.Name {
		case "None":
			b.ReportMetric(r.Goodputs[4], "none-1e2-Gbps")
		case "Wharf":
			b.ReportMetric(r.Goodputs[4], "wharf-1e2-Gbps")
		case "LinkGuardian":
			b.ReportMetric(r.Goodputs[4], "LG-1e2-Gbps")
		}
	}
}

// ------------------------------------------------------- Fleet figures --

func fleetOpts() experiments.FleetOpts {
	return experiments.FleetOpts{
		Pods:        32,
		Horizon:     90 * 24 * time.Hour,
		SampleEvery: 12 * time.Hour,
		Seed:        1,
	}
}

func BenchmarkFigure15_FleetSnapshot(b *testing.B) {
	var fc experiments.FleetComparison
	for i := 0; i < b.N; i++ {
		fc = experiments.RunFleet(0.75, fleetOpts())
	}
	v, c := fc.Figure15Window(30*24*time.Hour, 7*24*time.Hour)
	if len(v) > 0 {
		b.ReportMetric(v[len(v)-1].TotalPenalty, "vanilla-penalty")
		b.ReportMetric(c[len(c)-1].TotalPenalty, "combined-penalty")
	}
}

func BenchmarkFigure16_FleetYearCDF(b *testing.B) {
	var fc experiments.FleetComparison
	for i := 0; i < b.N; i++ {
		fc = experiments.RunFleet(0.5, fleetOpts())
	}
	b.ReportMetric(fc.PenaltyGain.Percentile(50), "gain-p50")
	b.ReportMetric(fc.CapacityDecreasePP.Max(), "capdec-max-pp")
}

// ------------------------------------------------------------ Figure 20 --

func BenchmarkFigure20_ConsecutiveLoss(b *testing.B) {
	var n int
	for i := 0; i < b.N; i++ {
		pts := experiments.Figure20(0.05, true, 2_000_000, int64(i)+1)
		n = experiments.MaxRunCovered(pts, 0.999999)
	}
	b.ReportMetric(float64(n), "registers-for-6nines")
}

// ------------------------------------------------- Ablations (DESIGN §5) --

// BenchmarkAblation_RetxCopies sweeps N and verifies Equation 2's tradeoff:
// more copies, lower residual loss, slightly lower effective speed.
func BenchmarkAblation_RetxCopies(b *testing.B) {
	var speeds [3]float64
	for i := 0; i < b.N; i++ {
		for j, n := range []int{1, 2, 4} {
			cfg := core.NewConfig(simtime.Rate100G, 1e-3)
			cfg.RetxCopies = n
			r := runStressWithConfig(cfg, simtime.Rate100G, 1e-3)
			speeds[j] = r.EffSpeedFrac
		}
	}
	b.ReportMetric(speeds[0]*100, "N1-effspeed-%")
	b.ReportMetric(speeds[2]*100, "N4-effspeed-%")
}

// BenchmarkAblation_DummyCopies compares tail-loss detection robustness
// under bursty loss with 1 vs 3 dummy copies (§5 "handling bursty losses").
func BenchmarkAblation_DummyCopies(b *testing.B) {
	var one, three experiments.StressResult
	for i := 0; i < b.N; i++ {
		cfg := core.NewConfig(simtime.Rate100G, 1e-3)
		cfg.DummyCopies = 1
		one = runStressWithConfig(cfg, simtime.Rate100G, 1e-3)
		cfg.DummyCopies = 3
		three = runStressWithConfig(cfg, simtime.Rate100G, 1e-3)
	}
	b.ReportMetric(float64(one.Timeouts), "1copy-timeouts")
	b.ReportMetric(float64(three.Timeouts), "3copy-timeouts")
}

// BenchmarkAblation_AckNoTimeout sweeps the receiver stall timeout.
func BenchmarkAblation_AckNoTimeout(b *testing.B) {
	var fast, slow experiments.StressResult
	for i := 0; i < b.N; i++ {
		cfg := core.NewConfig(simtime.Rate100G, 1e-2)
		cfg.AckNoTimeout = 5 * simtime.Microsecond
		fast = runStressWithConfig(cfg, simtime.Rate100G, 1e-2)
		cfg.AckNoTimeout = 20 * simtime.Microsecond
		slow = runStressWithConfig(cfg, simtime.Rate100G, 1e-2)
	}
	b.ReportMetric(float64(fast.Timeouts), "5us-timeouts")
	b.ReportMetric(float64(slow.Timeouts), "20us-timeouts")
}

// BenchmarkAblation_RDMASelectiveRepeat compares go-back-N with the
// selective-repeat extension under LG_NB (§5 future work).
func BenchmarkAblation_RDMASelectiveRepeat(b *testing.B) {
	var gbn, sr experiments.FCTResult
	for i := 0; i < b.N; i++ {
		opts := experiments.DefaultFCTOpts(24387)
		opts.Trials = 3000
		gbn = experiments.RunFCT(experiments.TransRDMA, experiments.LGNB, opts)
		sr = experiments.RunFCT(experiments.TransRDMASR, experiments.LGNB, opts)
	}
	b.ReportMetric(gbn.P(99.9), "goBackN-p999-us")
	b.ReportMetric(sr.P(99.9), "selRepeat-p999-us")
}

// runStressWithConfig is a helper mirroring experiments.RunStress but with
// a caller-supplied LinkGuardian configuration.
func runStressWithConfig(cfg core.Config, rate simtime.Rate, loss float64) experiments.StressResult {
	return experiments.RunStressConfig(cfg, rate, loss, stressOpts())
}

// BenchmarkAblation_Tofino2Buffering compares the recirculation-based Tx
// buffer against §5's Tofino2-style bufferless retransmission: recovery
// delay and effective speed both improve, and the sender-side
// recirculation overhead disappears.
func BenchmarkAblation_Tofino2Buffering(b *testing.B) {
	var t1, t2 experiments.StressResult
	for i := 0; i < b.N; i++ {
		cfg := core.NewConfig(simtime.Rate100G, 1e-3)
		t1 = experiments.RunStressConfig(cfg, simtime.Rate100G, 1e-3, stressOpts())
		cfg.Tofino2Buffering = true
		t2 = experiments.RunStressConfig(cfg, simtime.Rate100G, 1e-3, stressOpts())
	}
	b.ReportMetric(t1.RetxDelays.Percentile(50), "tofino-retx-p50-us")
	b.ReportMetric(t2.RetxDelays.Percentile(50), "tofino2-retx-p50-us")
	b.ReportMetric(t1.EffSpeedFrac*100, "tofino-effspeed-%")
	b.ReportMetric(t2.EffSpeedFrac*100, "tofino2-effspeed-%")
}

// BenchmarkAblation_IncrementalDeployment sweeps §5's partial-deployment
// fraction on the fleet simulation.
func BenchmarkAblation_IncrementalDeployment(b *testing.B) {
	var p25, p100 float64
	for i := 0; i < b.N; i++ {
		sum := func(frac float64) float64 {
			rng := rand.New(rand.NewSource(42))
			cfg := fabric.DefaultConfig()
			cfg.Pods = 16
			net := fabric.New(cfg)
			trace := failtrace.Generate(rand.New(rand.NewSource(7)), net.NumLinks(), 90*24*time.Hour)
			samples := corropt.Run(rng, net, trace, corropt.Options{
				Constraint: 0.75, Policy: corropt.WithLinkGuardian, DeployFraction: frac,
			}, 12*time.Hour, 90*24*time.Hour)
			s := 0.0
			for _, x := range samples {
				s += x.TotalPenalty
			}
			return s
		}
		p25 = sum(0.25)
		p100 = sum(1.0)
	}
	b.ReportMetric(p25, "penalty-sum-25pct")
	b.ReportMetric(p100, "penalty-sum-full")
}
