// Quickstart: protect a single corrupting link with LinkGuardian.
//
// The example builds the smallest interesting topology — two hosts, two
// switches, one optical link corrupting at 1e-3 — blasts a million packets
// across it, and shows the loss rate with LinkGuardian dormant vs. active.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"linkguardian/internal/core"
	"linkguardian/internal/simnet"
	"linkguardian/internal/simtime"
)

func main() {
	sim := simnet.NewSim(42)

	// Topology: h1 — sw2 ==(corrupting 100G link)== sw6 — h2.
	h1 := simnet.NewHost(sim, "h1")
	h2 := simnet.NewHost(sim, "h2")
	sw2 := simnet.NewSwitch(sim, "sw2")
	sw6 := simnet.NewSwitch(sim, "sw6")
	l1 := simnet.Connect(sim, h1, sw2, simtime.Rate100G, 100*simtime.Nanosecond)
	mid := simnet.Connect(sim, sw2, sw6, simtime.Rate100G, 100*simtime.Nanosecond)
	l2 := simnet.Connect(sim, sw6, h2, simtime.Rate100G, 100*simtime.Nanosecond)
	sw2.AddRoute("h2", mid.A())
	sw2.AddRoute("h1", l1.B())
	sw6.AddRoute("h2", l2.A())
	sw6.AddRoute("h1", mid.B())

	// The link corrupts packets in the sw2 -> sw6 direction at 1e-3.
	const lossRate = 1e-3
	mid.SetLoss(mid.A(), simnet.IIDLoss{P: lossRate})

	// A LinkGuardian instance guards that direction. It is created
	// dormant; Enable() activates it.
	lg := core.Protect(sim, mid.A(), core.NewConfig(simtime.Rate100G, lossRate))

	received := 0
	h2.OnReceive = func(p *simnet.Packet) { received++ }

	blast := func(n int) (delivered int) {
		received = 0
		for i := 0; i < n; i++ {
			h1.Send(sim.NewPacket(simnet.KindData, 1500, "h2"))
		}
		// 1M MTU frames need ~125ms of wire time at 100G; run with slack.
		sim.RunFor(400 * simtime.Millisecond)
		return received
	}

	const n = 1_000_000
	fmt.Printf("sending %d packets across a link with %.0e corruption loss\n\n", n, lossRate)

	lost := n - blast(n)
	fmt.Printf("LinkGuardian dormant: %6d packets lost (rate %.2e)\n", lost, float64(lost)/n)

	lg.Enable()
	lost = n - blast(n)
	fmt.Printf("LinkGuardian active:  %6d packets lost (rate %.2e)\n\n", lost, float64(lost)/n)

	m := &lg.M
	fmt.Printf("protocol activity: %d losses detected, %d retransmissions (N=%d copies each),\n",
		m.LossEvents, m.Retransmits, lg.Copies())
	fmt.Printf("%d tail losses caught by dummy packets, %d timeouts, peak buffers tx=%dKB rx=%dKB\n",
		m.TailDetections, m.Timeouts, m.TxBufPeak/1024, m.RxBufPeak/1024)
}
