// Shortflows: the tail-FCT experiment that motivates the paper (§1, §4.3).
//
// Datacenter RPCs are tiny — most fit in one packet — so a corrupted packet
// is usually the *last* packet of its flow, and only a retransmission
// timeout can recover it end-to-end. This example measures the FCT tail of
// 143-byte RPCs (the modal Google RPC size) over DCTCP and RDMA on a lossy
// 100G link, with and without LinkGuardian.
//
// Run with: go run ./examples/shortflows
package main

import (
	"fmt"

	"linkguardian/internal/experiments"
)

func main() {
	const trials = 10000
	opts := experiments.DefaultFCTOpts(143)
	opts.Trials = trials

	fmt.Printf("%d sequential 143B flows on a 100G link, corruption loss 1e-3\n\n", trials)
	fmt.Println("transport  link            p50        p99      p99.9     p99.99   (µs)")
	for _, tr := range []experiments.Transport{experiments.TransDCTCP, experiments.TransRDMA} {
		for _, prot := range []experiments.Protection{
			experiments.NoLoss, experiments.LossOnly, experiments.LG, experiments.LGNB,
		} {
			r := experiments.RunFCT(tr, prot, opts)
			fmt.Printf("%-9v  %-8v  %9.1f  %9.1f  %9.1f  %9.1f\n",
				tr, prot, r.P(50), r.P(99), r.P(99.9), r.P(99.99))
		}
		fmt.Println()
	}
	fmt.Println("The 'loss' rows hit the ~1ms RTO at the tail; LinkGuardian recovers at")
	fmt.Println("sub-RTT timescales, keeping the tail indistinguishable from 'no-loss'.")
}
