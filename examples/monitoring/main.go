// Monitoring: the corruptd activation lifecycle (Appendix C).
//
// A link starts healthy; mid-run its optical attenuation degrades (modeled
// by switching on a corruption loss model). The corruptd daemon on the
// downstream switch notices the loss-rate estimate crossing the healthy
// threshold in its counter window, publishes a notification, and the
// upstream switch's activator enables LinkGuardian with the Equation 2
// parameters for the measured rate — all without touching the end hosts.
//
// Run with: go run ./examples/monitoring
package main

import (
	"fmt"

	"linkguardian/internal/core"
	"linkguardian/internal/monitor"
	"linkguardian/internal/simnet"
	"linkguardian/internal/simtime"
)

func main() {
	sim := simnet.NewSim(7)
	h1 := simnet.NewHost(sim, "h1")
	h2 := simnet.NewHost(sim, "h2")
	sw2 := simnet.NewSwitch(sim, "sw2")
	sw6 := simnet.NewSwitch(sim, "sw6")
	l1 := simnet.Connect(sim, h1, sw2, simtime.Rate25G, 0)
	mid := simnet.Connect(sim, sw2, sw6, simtime.Rate25G, 100*simtime.Nanosecond)
	l2 := simnet.Connect(sim, sw6, h2, simtime.Rate25G, 0)
	sw2.AddRoute("h2", mid.A())
	sw2.AddRoute("h1", l1.B())
	sw6.AddRoute("h2", l2.A())
	sw6.AddRoute("h1", mid.B())

	received := 0
	h2.OnReceive = func(p *simnet.Packet) { received++ }

	// Dormant LinkGuardian on sw2's egress; corruptd daemons on both
	// switches; the activator ties notifications to the instance.
	lg := core.Protect(sim, mid.A(), core.NewConfig(simtime.Rate25G, 0))
	bus := monitor.NewBus()
	cfg := monitor.Config{PollInterval: simtime.Millisecond, WindowFrames: 50000, Threshold: 1e-8}
	monitor.NewDaemon(sim, sw2, bus, cfg).Start()
	d6 := monitor.NewDaemon(sim, sw6, bus, cfg)
	d6.Start()
	monitor.NewActivator(bus, sw2, map[string]*core.Instance{mid.A().Name: lg})

	// Steady traffic throughout.
	sent := 0
	sim.Every(2*simtime.Microsecond, func() bool {
		h1.Send(sim.NewPacket(simnet.KindData, 1400, "h2"))
		sent++
		return sent < 200000
	})

	// The fiber degrades at t=50ms.
	sim.At(simtime.Time(50*simtime.Millisecond), func() {
		fmt.Printf("t=%-8v fiber degrades: corruption loss 1e-3 begins\n", sim.Now())
		mid.SetLoss(mid.A(), simnet.IIDLoss{P: 1e-3})
	})

	// Observe the moment of activation.
	sim.Every(simtime.Millisecond, func() bool {
		if lg.Enabled() {
			fmt.Printf("t=%-8v corruptd detected the loss; LinkGuardian activated with N=%d copies\n",
				sim.Now(), lg.Copies())
			return false
		}
		return true
	})

	sim.RunFor(500 * simtime.Millisecond)

	lost := sent - received
	fmt.Printf("t=%-8v run complete: %d/%d packets delivered (%d lost before activation)\n",
		sim.Now(), received, sent, lost)
	fmt.Printf("after activation: %d losses recovered link-locally, %d unrecovered\n",
		lg.M.Retransmits, lg.M.Unrecovered)
}
