// Fleet: operating a datacenter fabric with LinkGuardian + CorrOpt (§3.6,
// §4.8).
//
// The example builds a Facebook-fabric topology, replays a synthetic
// one-quarter corruption trace through both repair policies — CorrOpt alone
// vs. LinkGuardian+CorrOpt — and prints the total-penalty and capacity
// metrics side by side.
//
// Run with: go run ./examples/fleet
package main

import (
	"fmt"
	"time"

	"linkguardian/internal/experiments"
)

func main() {
	opts := experiments.FleetOpts{
		Pods:        32, // 12,288 optical links
		Horizon:     90 * 24 * time.Hour,
		SampleEvery: 12 * time.Hour,
		Seed:        7,
	}
	for _, constraint := range []float64{0.50, 0.75} {
		fc := experiments.RunFleet(constraint, opts)
		fmt.Printf("capacity constraint %.0f%% — %d links, 90 days\n", constraint*100, fc.Links)
		fmt.Printf("  penalty gain (CorrOpt / LG+CorrOpt): p50 %.3g, p90 %.3g, max %.3g\n",
			fc.PenaltyGain.Percentile(50), fc.PenaltyGain.Percentile(90), fc.PenaltyGain.Max())
		fmt.Printf("  least-capacity cost of LG: p50 %.4f%%, worst %.4f%% of pod capacity\n",
			fc.CapacityDecreasePP.Percentile(50), fc.CapacityDecreasePP.Max())

		// A one-week zoom like Figure 15.
		v, c := fc.Figure15Window(30*24*time.Hour, 7*24*time.Hour)
		fmt.Println("  week 5 snapshot (day | penalty CorrOpt | penalty LG+CorrOpt | LG links):")
		for i := range v {
			fmt.Printf("    %5.1f | %10.3e | %10.3e | %d\n",
				v[i].At.Hours()/24, v[i].TotalPenalty, c[i].TotalPenalty, c[i].LGActive)
		}
		fmt.Println()
	}
}
