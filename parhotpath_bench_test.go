package bench

// Parallel hot-path benchmark: the sharded conservative engine driving a
// multi-segment fabric — 4 segments is 8 switches — with every segment's
// protected link at line rate plus cross-segment transit traffic crossing
// shard boundaries every window. scripts/bench.sh records the pkts/sec
// and allocs/op of the shards-1 and shards-4 variants into BENCH_6.json;
// the CI bench-par-smoke job gates allocs/op == 0.
//
// The shards-N sub-benchmarks vary only the worker cap over the same fixed
// 4-shard partition, so their outputs are identical by the engine's
// determinism contract; the wall-clock ratio between them is the parallel
// speedup, which tracks the number of physical cores the runner has
// (BENCH json records "cpus" next to the numbers for exactly this
// reason).

import (
	"fmt"
	"testing"

	"linkguardian/internal/core"
	"linkguardian/internal/experiments"
	"linkguardian/internal/simnet"
	"linkguardian/internal/simtime"
)

const parSegments = 4

func runParHotPath(b *testing.B, workers int, loss float64) {
	cfg := core.NewConfig(simtime.Rate100G, loss)
	f := experiments.NewSegmented(1, parSegments, workers, simtime.Rate100G, cfg)
	defer f.Eng.Close()
	f.SetLoss(loss)
	f.EnableAll()
	rx, _ := f.CountReceivedAll()

	gens := make([]*experiments.Generator, parSegments)
	for i, tb := range f.Segs {
		// Same finite-buffer guard as the sequential benchmark: the
		// generator is oblivious to PFC backpressure, and cross traffic
		// adds to the protected queue, so leave headroom under the cap.
		tb.Link.A().Port.Q(simnet.PrioNormal).MaxBytes = 256 << 10
		gens[i] = tb.StartGeneratorAt(1500, 0.85)
	}
	stopCross, _ := f.CrossTraffic(1500, 0.1)
	defer func() {
		for _, g := range gens {
			g.Stop()
		}
		stopCross()
	}()

	for i := 0; i < 10; i++ {
		f.Eng.RunFor(hotPathSlice)
	}
	var start uint64
	for _, p := range rx {
		start += *p
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Eng.RunFor(hotPathSlice)
	}
	b.StopTimer()

	var delivered uint64
	for _, p := range rx {
		delivered += *p
	}
	delivered -= start
	if delivered == 0 {
		b.Fatal("parallel hot path delivered no packets")
	}
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(delivered)/secs, "pkts/sec")
	}
	b.ReportMetric(float64(delivered)/float64(b.N), "pkts/op")
}

// BenchmarkParHotPath_PktsPerSec drives the 4-segment (8-switch) fabric
// through the parallel engine at a 1e-3 corruption rate on every protected
// link. shards-1 runs the same partition inline on one goroutine — the
// sequential baseline for the speedup ratio; shards-4 runs all four shards
// concurrently.
func BenchmarkParHotPath_PktsPerSec(b *testing.B) {
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards-%d", w), func(b *testing.B) { runParHotPath(b, w, 1e-3) })
	}
}
