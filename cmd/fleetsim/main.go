// Command fleetsim runs the §4.8 large-scale deployment simulation:
// CorrOpt vs LinkGuardian+CorrOpt on a Facebook-fabric topology under a
// synthetic corruption trace, reporting the Figure 15 time series and the
// Figure 16 distributions.
//
// Usage:
//
//	fleetsim [-pods 256] [-days 365] [-constraint 0.75] [-sample 6h]
//	         [-seed 1] [-series] [-workers 0]
package main

import (
	"flag"
	"fmt"
	"time"

	"linkguardian/internal/experiments"
	"linkguardian/internal/parallel"
)

func main() {
	pods := flag.Int("pods", 256, "fabric pods (256 = ~100K links, the paper's scale)")
	days := flag.Int("days", 365, "simulated horizon in days")
	constraint := flag.Float64("constraint", 0.75, "capacity constraint (least paths per ToR)")
	sample := flag.Duration("sample", 6*time.Hour, "metric sampling interval")
	seed := flag.Int64("seed", 1, "trace seed")
	series := flag.Bool("series", false, "print the full Figure 15 time series")
	workers := flag.Int("workers", 0, "parallel worker count (0 = all cores); results are identical at any setting")
	flag.Parse()
	parallel.SetWorkers(*workers)

	opts := experiments.FleetOpts{
		Pods:        *pods,
		Horizon:     time.Duration(*days) * 24 * time.Hour,
		SampleEvery: *sample,
		Seed:        *seed,
	}
	fc := experiments.RunFleet(*constraint, opts)
	fmt.Printf("fabric: %d links, constraint %.0f%%, horizon %dd\n", fc.Links, *constraint*100, *days)
	fmt.Println(fc)

	fmt.Println("\nFigure 16a — gain in total penalty (vanilla/combined):")
	for _, p := range []float64{10, 25, 50, 75, 90, 99} {
		fmt.Printf("  p%-4g %.4g\n", p, fc.PenaltyGain.Percentile(p))
	}
	fmt.Println("Figure 16b — decrease in least capacity per pod (percent points):")
	for _, p := range []float64{50, 90, 99, 100} {
		fmt.Printf("  p%-4g %.4f\n", p, fc.CapacityDecreasePP.Percentile(p))
	}

	if *series {
		fmt.Println("\nFigure 15 series (day, penaltyV, penaltyC, pathsV, pathsC, capV, capC, LG links, maxLG/pipe):")
		for i := range fc.Vanilla {
			v, c := fc.Vanilla[i], fc.Combined[i]
			fmt.Printf("%7.2f  %10.3e  %10.3e  %6.4f  %6.4f  %6.4f  %6.4f  %4d  %2d\n",
				v.At.Hours()/24, v.TotalPenalty, c.TotalPenalty,
				v.LeastPaths, c.LeastPaths, v.LeastPodCap, c.LeastPodCap,
				c.LGActive, c.MaxLGPerPipe)
		}
	}
}
