// Command fleetsim runs the §4.8 large-scale deployment simulation in two
// modes.
//
// Legacy mode (default) reproduces the paper's CorrOpt vs
// LinkGuardian+CorrOpt comparison on a Facebook-fabric topology, reporting
// the Figure 15 time series and the Figure 16 distributions — byte-
// identical to the pre-plugin simulator:
//
//	fleetsim [-pods 256] [-days 365] [-constraint 0.75] [-sample 6h]
//	         [-seed 1] [-series] [-workers 0]
//
// Matrix mode (-solutions) scales to multi-million-link fabrics on the
// compact sharded engine and emits one Pareto table comparing repair
// solutions (cost vs capacity vs residual loss):
//
//	fleetsim -solutions all -links 1000000 [-years 1] [-constraint 0.75]
//	         [-sample 6h] [-seed 1] [-pods-per-shard 32] [-workers 0]
//	         [-metrics-out fleet_metrics.json] [-invariance]
//
// Results are byte-identical at any -workers in both modes.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"time"

	"linkguardian/internal/experiments"
	"linkguardian/internal/fleetsim"
	"linkguardian/internal/obs"
	"linkguardian/internal/parallel"
	"linkguardian/internal/results"
)

func main() {
	pods := flag.Int("pods", 256, "fabric pods (256 = ~100K links, the paper's scale; legacy mode)")
	days := flag.Int("days", 365, "simulated horizon in days (legacy mode)")
	constraint := flag.Float64("constraint", 0.75, "capacity constraint (least paths per ToR)")
	sample := flag.Duration("sample", 6*time.Hour, "metric sampling interval")
	seed := flag.Int64("seed", 1, "trace seed")
	series := flag.Bool("series", false, "print the full Figure 15 time series (legacy mode)")
	workers := flag.Int("workers", 0, "parallel worker count (0 = all cores); results are identical at any setting")

	solutions := flag.String("solutions", "", "matrix mode: comma-separated repair solutions (corropt,lg,wharf,p4protect) or 'all'")
	links := flag.Int("links", 1_000_000, "matrix mode: target link count, rounded up to whole pods")
	years := flag.Float64("years", 1, "matrix mode: simulated horizon in years")
	podsPerShard := flag.Int("pods-per-shard", 32, "matrix mode: pods per shard (fixed by config, never by -workers)")
	metricsOut := flag.String("metrics-out", "", "matrix mode: write per-shard fleet counters as a metrics JSON file")
	invariance := flag.Bool("invariance", false, "matrix mode: re-run at workers 1/2/4/8 and fail unless all outputs are byte-identical")
	resultsDir := flag.String("results-dir", "", "matrix mode: ingest one content-hashed run per solution's Pareto row into the results store at this directory")
	flag.Parse()
	parallel.SetWorkers(*workers)

	if *solutions == "" {
		legacy(*pods, *days, *constraint, *sample, *seed, *series)
		return
	}

	sols, err := fleetsim.ParseSolutions(*solutions)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fleetsim:", err)
		os.Exit(2)
	}
	cfg := fleetsim.Config{
		Links:        *links,
		Horizon:      time.Duration(*years * 365 * 24 * float64(time.Hour)),
		SampleEvery:  *sample,
		Seed:         *seed,
		Constraint:   *constraint,
		PodsPerShard: *podsPerShard,
	}

	if *invariance {
		if err := checkInvariance(cfg, sols); err != nil {
			fmt.Fprintln(os.Stderr, "fleetsim: worker invariance FAILED:", err)
			os.Exit(1)
		}
		fmt.Println("worker invariance ok: identical Pareto tables at workers 1/2/4/8")
	}

	start := time.Now()
	m := fleetsim.RunMatrix(cfg, sols)
	elapsed := time.Since(start)
	if err := m.WriteParetoTable(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fleetsim:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "simulated %d links x %d solutions in %s\n",
		m.Config.NumLinks(), len(m.Results), elapsed.Round(time.Millisecond))

	if *metricsOut != "" {
		reg := obs.NewRegistry()
		obs.RegisterFleet(reg, "fleet", m.ObsStats())
		if err := obs.WriteMetricsFile(*metricsOut, reg.Snapshot()); err != nil {
			fmt.Fprintln(os.Stderr, "fleetsim:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *metricsOut)
	}
	if *resultsDir != "" {
		if err := ingestPareto(*resultsDir, cfg, m); err != nil {
			fmt.Fprintln(os.Stderr, "fleetsim:", err)
			os.Exit(1)
		}
	}
}

// ingestPareto streams one run per solution's Pareto row through the
// results batcher. The config carries the fabric scale and seed (never the
// worker count — matrix results are worker-invariant and the content hash
// must be too).
func ingestPareto(dir string, cfg fleetsim.Config, m fleetsim.MatrixResult) error {
	store, err := results.Open(dir)
	if err != nil {
		return err
	}
	conf := map[string]string{
		"links":   fmt.Sprint(m.Config.NumLinks()),
		"horizon": m.Config.Horizon.String(),
		"seed":    fmt.Sprint(cfg.Seed),
	}
	rows := m.Pareto()
	runs := make([]*results.Run, 0, len(rows))
	for _, r := range rows {
		runs = append(runs, &results.Run{
			Kind:   "fleetsim",
			Name:   "pareto/" + r.Solution,
			Source: "cmd/fleetsim",
			Config: conf,
			Records: []results.Record{
				{Name: "cost", Value: r.Cost},
				{Name: "repairs", Value: float64(r.Repairs), Unit: "count"},
				{Name: "activations", Value: float64(r.Activations), Unit: "count"},
				{Name: "penalty.mean", Value: r.MeanPenalty},
				{Name: "penalty.p99", Value: r.P99Penalty},
				{Name: "penalty.max", Value: r.MaxPenalty},
				{Name: "least_paths.min", Value: r.MinLeastPaths},
				{Name: "least_cap.min", Value: r.MinLeastCap},
				{Name: "least_cap.mean", Value: r.MeanLeastCap},
			},
		})
	}
	added, err := store.AddAll(runs)
	if cerr := store.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, results.IngestSummary(dir, len(runs), added))
	return nil
}

// legacy reproduces the pre-plugin §4.8 report (both policies expressed as
// Solution plugins; the differential golden test pins the bytes).
func legacy(pods, days int, constraint float64, sample time.Duration, seed int64, series bool) {
	opts := experiments.FleetOpts{
		Pods:        pods,
		Horizon:     time.Duration(days) * 24 * time.Hour,
		SampleEvery: sample,
		Seed:        seed,
	}
	fc := experiments.RunFleet(constraint, opts)
	if err := experiments.WriteFleetReport(os.Stdout, fc, days, series); err != nil {
		fmt.Fprintln(os.Stderr, "fleetsim:", err)
		os.Exit(1)
	}
}

// checkInvariance renders the Pareto table at several worker counts and
// compares the bytes; any divergence is a determinism regression in the
// sharded engine.
func checkInvariance(cfg fleetsim.Config, sols []fleetsim.Solution) error {
	defer parallel.SetWorkers(0)
	var want []byte
	for _, w := range []int{1, 2, 4, 8} {
		parallel.SetWorkers(w)
		var buf bytes.Buffer
		if err := fleetsim.RunMatrix(cfg, sols).WriteParetoTable(&buf); err != nil {
			return err
		}
		if want == nil {
			want = buf.Bytes()
			continue
		}
		if !bytes.Equal(want, buf.Bytes()) {
			return fmt.Errorf("output at -workers %d differs from -workers 1", w)
		}
	}
	return nil
}
