// Command lgsim runs a single-link LinkGuardian experiment on the simulated
// testbed of Figure 7 and reports effective loss rate, effective link
// speed, buffer usage and recovery statistics.
//
// Usage:
//
//	lgsim [-rate 100G] [-loss 1e-3] [-mode ordered|nb] [-duration 20ms]
//	      [-frame 1518] [-target 1e-8] [-seed 1]
//	      [-segments 1] [-shards 1]
//	      [-trace out.json] [-trace-cap 4096] [-metrics-out metrics.json]
//	      [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// -trace writes the protected link's trace ring: a ".jsonl" path gets one
// JSON object per line; any other extension gets the Chrome trace_event
// format that Perfetto loads directly.
//
// -segments > 1 runs the multi-segment fabric — N copies of the testbed
// joined in a ring of cross-shard links — on the sharded conservative
// engine; -shards caps how many shards execute concurrently (default 1 =
// sequential). The shard cap never changes results, only wall time.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"linkguardian/internal/core"
	"linkguardian/internal/experiments"
	"linkguardian/internal/obs"
	"linkguardian/internal/simtime"
)

func main() {
	rateStr := flag.String("rate", "100G", "link speed: 10G, 25G, 40G, 50G or 100G")
	loss := flag.Float64("loss", 1e-3, "corruption loss rate on the protected direction")
	modeStr := flag.String("mode", "ordered", "ordered (LinkGuardian) or nb (LinkGuardianNB)")
	duration := flag.Duration("duration", 20*time.Millisecond, "simulated measurement window")
	frame := flag.Int("frame", 1518, "stress-test frame size in bytes")
	target := flag.Float64("target", 1e-8, "operator target loss rate (Equation 2)")
	seed := flag.Int64("seed", 1, "simulation seed")
	tracePath := flag.String("trace", "", "write the protected link's trace (.jsonl = JSONL, else Chrome trace_event)")
	traceCap := flag.Int("trace-cap", 4096, "trace ring capacity (most recent events kept)")
	metricsOut := flag.String("metrics-out", "", "write the run's metrics snapshot as JSON")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile")
	memprofile := flag.String("memprofile", "", "write a heap profile")
	segments := flag.Int("segments", 1, "fabric segments (>1 runs the multi-segment fabric on the sharded engine)")
	shards := flag.Int("shards", 1, "concurrent shard executions of the sharded engine (never changes results)")
	flag.Parse()

	rate, err := parseRate(*rateStr)
	if err != nil {
		log.Fatal(err)
	}
	mode := core.Ordered
	if strings.EqualFold(*modeStr, "nb") {
		mode = core.NonBlocking
	}

	stopProf, err := obs.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		log.Fatal(err)
	}

	opts := experiments.StressOpts{Duration: simtime.Duration(*duration), FrameSize: *frame, Seed: *seed}
	if *tracePath != "" {
		opts.TraceCap = *traceCap
	}

	if *segments > 1 {
		fres := experiments.RunFabricStress(*seed, *segments, *shards, rate, *loss, simtime.Duration(*duration), opts)
		if err := stopProf(); err != nil {
			log.Fatal(err)
		}
		if *metricsOut != "" {
			if err := obs.WriteMetricsFile(*metricsOut, fres.Metrics); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("fabric          : %d segments, %v, loss %.0e, shards cap %d\n", *segments, rate, *loss, *shards)
		for i := 0; i < fres.Segments; i++ {
			fmt.Printf("segment s%d      : sent %d + cross %d, delivered %d\n",
				i, fres.Sent[i], fres.CrossTx[(i+fres.Segments-1)%fres.Segments], fres.Received[i])
		}
		for i := 0; i < fres.Segments; i++ {
			p := fmt.Sprintf("engine.shard%d", i)
			fmt.Printf("shard %d         : windows %d, stalls %d, handoffs out %d / in %d\n",
				i, fres.Metrics.Counter(p+".windows"), fres.Metrics.Counter(p+".lookahead_stalls"),
				fres.Metrics.Counter(p+".handoffs_out"), fres.Metrics.Counter(p+".handoffs_in"))
		}
		return
	}

	cfg := core.NewConfig(rate, *loss)
	cfg.Mode = mode
	cfg.TargetLossRate = *target
	res := experiments.RunStressConfig(cfg, rate, *loss, opts)

	if err := stopProf(); err != nil {
		log.Fatal(err)
	}
	if *tracePath != "" {
		if err := obs.WriteTraceFile(*tracePath, res.Trace); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trace           : %d events -> %s\n", len(res.Trace), *tracePath)
	}
	if *metricsOut != "" {
		if err := obs.WriteMetricsFile(*metricsOut, res.Metrics); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("link            : %v, %v mode, loss %.0e (target %.0e)\n", rate, mode, *loss, *target)
	fmt.Printf("retx copies (N) : %d (Equation 2)\n", res.Copies)
	fmt.Printf("packets sent    : %d MTU frames\n", res.PacketsSent)
	fmt.Printf("effective loss  : observed %.3e / analytic %.3e\n", res.EffLossObserved, res.EffLossAnalytic)
	fmt.Printf("effective speed : %.2f%% of line rate\n", res.EffSpeedFrac*100)
	fmt.Printf("loss events     : %d (timeouts: %d)\n", res.LossEvents, res.Timeouts)
	fmt.Printf("tx buffer (KB)  : %s\n", res.TxBuf)
	fmt.Printf("rx buffer (KB)  : %s\n", res.RxBuf)
	fmt.Printf("recirc overhead : tx %.3f%%, rx %.3f%% of pipeline capacity\n", res.RecircTx*100, res.RecircRx*100)
	if res.RetxDelays.N() > 0 {
		fmt.Printf("retx delay (µs) : p50 %.2f, p99 %.2f, max %.2f over %d recoveries\n",
			res.RetxDelays.Percentile(50), res.RetxDelays.Percentile(99), res.RetxDelays.Max(), res.RetxDelays.N())
	}
}

func parseRate(s string) (simtime.Rate, error) {
	switch strings.ToUpper(s) {
	case "10G":
		return simtime.Rate10G, nil
	case "25G":
		return simtime.Rate25G, nil
	case "40G":
		return simtime.Rate40G, nil
	case "50G":
		return simtime.Rate50G, nil
	case "100G":
		return simtime.Rate100G, nil
	}
	return 0, fmt.Errorf("unknown rate %q", s)
}
