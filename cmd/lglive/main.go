// Command lglive runs the LinkGuardian state machines over real UDP
// sockets: a live protected link on localhost (or any reachable path),
// with an in-path impairment proxy standing in for the testbed's variable
// optical attenuator.
//
// Five roles compose protected links:
//
//	lglive -mode=demo                 # sender + proxy + receiver in one process
//	lglive -mode=multi -links=8 -flows=1000  # N links on two shared mux sockets
//	lglive -mode=receiver -listen A -peer C
//	lglive -mode=proxy    -listen B -peer A -loss 1e-3
//	lglive -mode=sender   -listen C -peer B -count 1000000 -pps 100000
//
// Data flows sender → proxy → receiver; ACKs, loss notifications and PFC
// frames return receiver → sender directly (the attenuator corrupts one
// direction, §4 of the paper). Multi mode is the multi-tenant daemon: every
// sender half shares one batched mux socket, every receiver half another,
// with a seeded impairment proxy per link and the flow-scale load generator
// spread across the links; /metrics carries per-link link="N"/role labels.
// Every role serves Prometheus metrics on -http and shuts down cleanly on
// SIGINT/SIGTERM — one signal stops every link's loop before any counter is
// frozen, and -strict folds the per-link audits into the exit code.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"linkguardian/internal/core"
	"linkguardian/internal/live"
	"linkguardian/internal/obs"
	"linkguardian/internal/results"
	"linkguardian/internal/simtime"
)

type options struct {
	mode     string
	listen   string
	peer     string
	httpAddr string

	count    uint64
	duration time.Duration
	pps      float64
	size     int

	loss     float64
	burst    bool
	burstLen float64
	jitter   time.Duration
	reorder  float64

	links int
	flows int
	batch int

	rateGbps   float64
	lgMode     string
	seed       int64
	strict     bool
	jsonOut    bool
	resultsDir string
}

func parseFlags() *options {
	o := &options{}
	flag.StringVar(&o.mode, "mode", "demo", "role: demo | multi | sender | receiver | proxy")
	flag.StringVar(&o.listen, "listen", "127.0.0.1:0", "UDP address to bind")
	flag.StringVar(&o.peer, "peer", "", "UDP address frames are sent to (sender: proxy or receiver; receiver: sender; proxy: forward target)")
	flag.StringVar(&o.httpAddr, "http", "", "serve Prometheus metrics on this address at /metrics (demo also serves /metrics/sender)")
	flag.Uint64Var(&o.count, "count", 0, "packets to offer (sender/demo); 0 derives from -duration")
	flag.DurationVar(&o.duration, "duration", 10*time.Second, "offered-load duration when -count is 0; receiver auto-exit when set")
	flag.Float64Var(&o.pps, "pps", 20000, "offered packets per second")
	flag.IntVar(&o.size, "size", 1000, "app frame size in bytes")
	flag.Float64Var(&o.loss, "loss", 1e-3, "forward-path corruption probability at the proxy")
	flag.BoolVar(&o.burst, "burst", false, "use the Gilbert–Elliott burst-loss model instead of i.i.d.")
	flag.Float64Var(&o.burstLen, "burstlen", 4, "mean burst length in frames for -burst")
	flag.DurationVar(&o.jitter, "jitter", 0, "uniform forward-path delay span (order-preserving)")
	flag.Float64Var(&o.reorder, "reorder", 0, "per-datagram adjacent-swap probability at the proxy")
	flag.IntVar(&o.links, "links", 8, "protected links per shared mux socket (multi mode)")
	flag.IntVar(&o.flows, "flows", 0, "concurrent app flows across all links (multi mode; 0 means one per link)")
	flag.IntVar(&o.batch, "batch", 0, "mux syscall batch size (multi mode; 0 means the default)")
	flag.Float64Var(&o.rateGbps, "rate", 1, "protected link line rate in Gbit/s")
	flag.StringVar(&o.lgMode, "lg-mode", "ordered", "protocol mode: ordered | nb")
	flag.Int64Var(&o.seed, "seed", 1, "impairment RNG seed")
	flag.BoolVar(&o.strict, "strict", false, "exit non-zero unless the app-level audit is perfectly clean")
	flag.BoolVar(&o.jsonOut, "json", false, "dump the final metrics snapshot as JSON to stdout")
	flag.StringVar(&o.resultsDir, "results-dir", "", "demo/multi: ingest the run's delivery audit and counters into the results store at this directory")
	flag.Parse()
	if o.count == 0 {
		o.count = uint64(o.pps * o.duration.Seconds())
	}
	return o
}

func (o *options) protocolMode() (core.Mode, error) {
	switch o.lgMode {
	case "ordered":
		return core.Ordered, nil
	case "nb":
		return core.NonBlocking, nil
	}
	return core.Ordered, fmt.Errorf("unknown -lg-mode %q (want ordered or nb)", o.lgMode)
}

func (o *options) endpointConfig() (live.EndpointConfig, error) {
	mode, err := o.protocolMode()
	return live.EndpointConfig{
		Seed:     o.seed,
		LinkRate: simtime.Rate(o.rateGbps * float64(simtime.Gbps)),
		LossRate: o.loss,
		Mode:     mode,
		Strict:   o.strict,
	}, err
}

// serveMetrics starts a metrics listener if -http was given and returns the
// handler mux for additional routes.
func serveMetrics(addr string, routes map[string]func() obs.Snapshot) {
	if addr == "" {
		return
	}
	mux := http.NewServeMux()
	for path, snap := range routes {
		mux.Handle(path, obs.PrometheusHandler(snap))
	}
	go func() {
		if err := http.ListenAndServe(addr, mux); err != nil {
			fmt.Fprintf(os.Stderr, "lglive: metrics server: %v\n", err)
		}
	}()
}

// signalChan returns a channel closed on SIGINT/SIGTERM.
func signalChan() <-chan struct{} {
	done := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-sig
		close(done)
	}()
	return done
}

func bindUDP(addr string) (*net.UDPConn, error) {
	laddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	return net.ListenUDP("udp", laddr)
}

func resolvePeer(addr string) (*net.UDPAddr, error) {
	if addr == "" {
		return nil, fmt.Errorf("-peer is required for this mode")
	}
	return net.ResolveUDPAddr("udp", addr)
}

func runDemoMode(o *options) error {
	mode, err := o.protocolMode()
	if err != nil {
		return err
	}
	cfg := live.DemoConfig{
		Seed:     o.seed,
		Count:    o.count,
		Size:     o.size,
		PPS:      o.pps,
		LossRate: o.loss,
		Burst:    o.burst,
		BurstLen: o.burstLen,
		Jitter:   o.jitter,
		Reorder:  o.reorder,
		LinkRate: simtime.Rate(o.rateGbps * float64(simtime.Gbps)),
		Mode:     mode,
		Cancel:   signalChan(),
		OnStart: func(sender, receiver *live.Endpoint) {
			serveMetrics(o.httpAddr, map[string]func() obs.Snapshot{
				"/metrics":        func() obs.Snapshot { s, _ := receiver.Snapshot(); return s },
				"/metrics/sender": func() obs.Snapshot { s, _ := sender.Snapshot(); return s },
			})
		},
	}
	report, err := live.RunDemo(cfg)
	if err != nil {
		return err
	}
	fmt.Println(report)
	if o.jsonOut {
		if err := obs.MergeSnapshots(report.Sender, report.Receiver).WriteJSON(os.Stdout); err != nil {
			return err
		}
	}
	if o.resultsDir != "" {
		run := results.FromSnapshot("lglive", "demo", o.ingestConfig(),
			obs.MergeSnapshots(report.Sender, report.Receiver))
		run.Records = append(run.Records,
			results.Record{Name: "audit.offered", Value: float64(report.Offered), Unit: "count"},
			results.Record{Name: "audit.rx", Value: float64(report.App.Rx), Unit: "count"},
			results.Record{Name: "audit.lost", Value: float64(report.App.Lost), Unit: "count"},
			results.Record{Name: "audit.duplicate", Value: float64(report.App.Duplicate), Unit: "count"},
			results.Record{Name: "audit.out_of_seq", Value: float64(report.App.OutOfSeq), Unit: "count"},
			results.Record{Name: "proxy.dropped", Value: float64(report.ProxyDropped), Unit: "count"},
			results.Record{Name: "elapsed_sec", Value: report.Elapsed.Seconds()},
		)
		if err := ingestRun(o.resultsDir, run); err != nil {
			return err
		}
	}
	if o.strict {
		return report.Check()
	}
	return nil
}

// ingestConfig is the run configuration recorded with a live ingestion:
// the offered-load shape and impairment model, not the wall-clock outcome.
func (o *options) ingestConfig() map[string]string {
	return map[string]string{
		"seed":  fmt.Sprint(o.seed),
		"count": fmt.Sprint(o.count),
		"pps":   fmt.Sprint(o.pps),
		"size":  fmt.Sprint(o.size),
		"loss":  fmt.Sprint(o.loss),
		"links": fmt.Sprint(o.links),
		"flows": fmt.Sprint(o.flows),
		"mode":  o.lgMode,
	}
}

// ingestRun streams one run into the results store at dir. Live runs ride
// the wall clock, so every execution is a distinct data point (the content
// hash covers the measured counters, which differ run to run).
func ingestRun(dir string, run *results.Run) error {
	run.Source = "cmd/lglive"
	store, err := results.Open(dir)
	if err != nil {
		return err
	}
	ack := store.Add(run)
	if err := store.Close(); err != nil {
		return err
	}
	if ack.Err != nil {
		return ack.Err
	}
	fmt.Printf("results: run %s (new=%v) -> %s\n", ack.ID, ack.Added, dir)
	return nil
}

func runMultiMode(o *options) error {
	mode, err := o.protocolMode()
	if err != nil {
		return err
	}
	cfg := live.MultiConfig{
		Seed:     o.seed,
		Links:    o.links,
		Flows:    o.flows,
		Count:    o.count,
		Size:     o.size,
		PPS:      o.pps,
		LossRate: o.loss,
		Burst:    o.burst,
		BurstLen: o.burstLen,
		Jitter:   o.jitter,
		Reorder:  o.reorder,
		LinkRate: simtime.Rate(o.rateGbps * float64(simtime.Gbps)),
		Mode:     mode,
		Batch:    o.batch,
		Cancel:   signalChan(),
		OnStart: func(senders, receivers []*live.Endpoint) {
			if o.httpAddr == "" {
				return
			}
			mux := http.NewServeMux()
			mux.Handle("/metrics", obs.PrometheusMultiHandler(func() []obs.LabeledSnapshot {
				return live.LabeledSnapshots(senders, receivers)
			}))
			go func() {
				if err := http.ListenAndServe(o.httpAddr, mux); err != nil {
					fmt.Fprintf(os.Stderr, "lglive: metrics server: %v\n", err)
				}
			}()
		},
	}
	report, err := live.RunMulti(cfg)
	if err != nil {
		return err
	}
	fmt.Println(report)
	for i := range report.Links {
		lr := &report.Links[i]
		verdict := "ok"
		if err := lr.Check(); err != nil {
			verdict = err.Error()
		}
		fmt.Printf("link %d: offered=%d rx=%d lost=%d dup=%d ooo=%d flows=%d p99=%v | proxy dropped=%d | %s\n",
			lr.Link, lr.Offered, lr.Rx, lr.Lost, lr.Duplicate, lr.OutOfSeq,
			lr.Flows, lr.P99, lr.ProxyDropped, verdict)
	}
	if o.resultsDir != "" {
		run := &results.Run{
			Kind:   "lglive",
			Name:   "multi",
			Config: o.ingestConfig(),
			Records: []results.Record{
				{Name: "audit.offered", Value: float64(report.Offered), Unit: "count"},
				{Name: "audit.delivered", Value: float64(report.Delivered), Unit: "count"},
				{Name: "audit.lost", Value: float64(report.Lost), Unit: "count"},
				{Name: "audit.duplicate", Value: float64(report.Duplicate), Unit: "count"},
				{Name: "audit.out_of_seq", Value: float64(report.OutOfSeq), Unit: "count"},
				{Name: "audit.masked", Value: float64(report.Masked), Unit: "count"},
				{Name: "latency.p50_sec", Value: report.P50.Seconds()},
				{Name: "latency.p99_sec", Value: report.P99.Seconds()},
				{Name: "latency.p999_sec", Value: report.P999.Seconds()},
				{Name: "elapsed_sec", Value: report.Elapsed.Seconds()},
			},
		}
		if err := ingestRun(o.resultsDir, run); err != nil {
			return err
		}
	}
	if o.strict {
		return report.Check()
	}
	return nil
}

func runSenderMode(o *options) error {
	cfg, err := o.endpointConfig()
	if err != nil {
		return err
	}
	conn, err := bindUDP(o.listen)
	if err != nil {
		return err
	}
	peer, err := resolvePeer(o.peer)
	if err != nil {
		return err
	}
	ep := live.NewSender(cfg, conn, peer)
	defer ep.Stop()
	ep.Start()
	serveMetrics(o.httpAddr, map[string]func() obs.Snapshot{
		"/metrics": func() obs.Snapshot { s, _ := ep.Snapshot(); return s },
	})
	fmt.Printf("lglive sender: %v -> %v, %d packets at %.0f pps\n",
		conn.LocalAddr(), peer, o.count, o.pps)
	done, err := ep.StartGenerator(o.count, o.size, o.pps)
	if err != nil {
		return err
	}
	quit := signalChan()
	select {
	case <-done:
		// Give the final ACK round trips and any tail retransmissions a
		// moment before tearing the Tx buffer down.
		select {
		case <-time.After(2 * time.Second):
		case <-quit:
		}
	case <-quit:
	}
	return finishEndpoint(ep, o, false)
}

func runReceiverMode(o *options) error {
	cfg, err := o.endpointConfig()
	if err != nil {
		return err
	}
	conn, err := bindUDP(o.listen)
	if err != nil {
		return err
	}
	peer, err := resolvePeer(o.peer)
	if err != nil {
		return err
	}
	ep := live.NewReceiver(cfg, conn, peer)
	defer ep.Stop()
	ep.Start()
	serveMetrics(o.httpAddr, map[string]func() obs.Snapshot{
		"/metrics": func() obs.Snapshot { s, _ := ep.Snapshot(); return s },
	})
	fmt.Printf("lglive receiver: %v, ACKs to %v\n", conn.LocalAddr(), peer)
	quit := signalChan()
	if o.duration > 0 {
		select {
		case <-quit:
		case <-time.After(o.duration):
		}
	} else {
		<-quit
	}
	return finishEndpoint(ep, o, true)
}

// finishEndpoint prints an endpoint's final accounting and applies the
// strict audit on the receiving side.
func finishEndpoint(ep *live.Endpoint, o *options, audit bool) error {
	var app live.AppStats
	var wire live.WireStats
	ok := ep.Loop.Call(func() { app, wire = ep.App, ep.WireCounters() })
	if !ok {
		return fmt.Errorf("loop stopped before final stats")
	}
	fmt.Printf("app: tx=%d rx=%d lost=%d dup=%d ooo=%d gaps=%d | wire: tx=%d rx=%d tx_errs=%d decode_drops=%d\n",
		app.Tx, app.Rx, app.Lost, app.Duplicate, app.OutOfSeq, app.Gaps,
		wire.TxDatagrams, wire.RxDatagrams, wire.TxErrors, wire.DecodeDrops)
	if o.jsonOut {
		s, _ := ep.Snapshot()
		if err := s.WriteJSON(os.Stdout); err != nil {
			return err
		}
	}
	if audit && o.strict {
		switch {
		case app.Lost != 0:
			return fmt.Errorf("strict: %d app-visible lost packets", app.Lost)
		case app.Duplicate != 0:
			return fmt.Errorf("strict: %d duplicate deliveries", app.Duplicate)
		case app.OutOfSeq != 0:
			return fmt.Errorf("strict: %d out-of-order deliveries", app.OutOfSeq)
		}
	}
	return nil
}

func runProxyMode(o *options) error {
	if o.peer == "" {
		return fmt.Errorf("-peer is required for this mode")
	}
	var model = live.DemoConfig{LossRate: o.loss, Burst: o.burst, BurstLen: o.burstLen}
	imp := live.ProxyImpair{
		Model:       model.Model(),
		Jitter:      o.jitter,
		ReorderProb: o.reorder,
	}
	p, err := live.NewProxy(o.listen, o.peer, imp, o.seed)
	if err != nil {
		return err
	}
	defer p.Close()
	fmt.Printf("lglive proxy: %v -> %v, loss=%g burst=%v jitter=%v reorder=%g\n",
		p.Addr(), o.peer, o.loss, o.burst, o.jitter, o.reorder)
	<-signalChan()
	fmt.Printf("proxy: forwarded=%d dropped=%d delayed=%d swapped=%d\n",
		p.Forwarded(), p.Dropped(), p.Delayed(), p.Swapped())
	return nil
}

func main() {
	o := parseFlags()
	var err error
	switch o.mode {
	case "demo":
		err = runDemoMode(o)
	case "multi":
		err = runMultiMode(o)
	case "sender":
		err = runSenderMode(o)
	case "receiver":
		err = runReceiverMode(o)
	case "proxy":
		err = runProxyMode(o)
	default:
		err = fmt.Errorf("unknown -mode %q (want demo, multi, sender, receiver or proxy)", o.mode)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "lglive: %v\n", err)
		os.Exit(1)
	}
}
