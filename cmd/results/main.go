// Command results is the query side of the experiment-results service: a
// longitudinal, content-addressed store of every experiment run — paper
// figures, chaos soaks, fleet matrices, live dataplane audits, and the
// BENCH_*.json benchmark history — with deterministic, byte-stable output.
//
// Usage:
//
//	results -dir DIR import BENCH_4.json BENCH_6.json ...
//	results -dir DIR list [-kind bench]
//	results -dir DIR show <id-prefix>
//	results -dir DIR diff <id-prefix> <id-prefix>
//	results -dir DIR trend [-kind bench] [-metric pkts_per_sec]
//	results -dir DIR blob <addr>              (raw artifact blob to stdout)
//
// Runs are content-hashed — canonical serialization of config, records and
// blob addresses — so re-ingesting the same evidence deduplicates, and
// "identical run" is an ID comparison. Query output is sorted by
// (kind, PR, name, ID), never by ingestion order, so it is byte-identical
// across runs and across the -workers counts of the producing experiments.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"linkguardian/internal/results"
)

func usage() {
	fmt.Fprintln(os.Stderr, "usage: results -dir DIR {import FILES... | list | show ID | diff ID ID | trend | blob ADDR}")
	flag.PrintDefaults()
}

func main() {
	dir := flag.String("dir", "", "results store directory (required)")
	kind := flag.String("kind", "", "list/trend: filter by run kind (trend default: bench)")
	metric := flag.String("metric", "", "trend: only metrics whose name contains this substring")
	flag.Usage = usage
	flag.Parse()
	if *dir == "" || flag.NArg() == 0 {
		usage()
		os.Exit(2)
	}
	if err := run(*dir, *kind, *metric, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "results:", err)
		os.Exit(1)
	}
}

func run(dir, kind, metric string, args []string) error {
	cmd, args := args[0], args[1:]
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()

	if cmd == "import" {
		if len(args) == 0 {
			return fmt.Errorf("import: no files named")
		}
		store, err := results.Open(dir)
		if err != nil {
			return err
		}
		total, added, err := results.ImportBenchFiles(store, args)
		if cerr := store.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Fprintln(out, results.IngestSummary(dir, total, added))
		return nil
	}

	// Query commands open the backend read-mostly, no batcher needed.
	b, err := results.OpenFile(dir, results.FileOptions{})
	if err != nil {
		return err
	}
	defer b.Close()

	switch cmd {
	case "list":
		return results.WriteList(out, b, kind)
	case "show":
		if len(args) != 1 {
			return fmt.Errorf("show: want exactly one run ID")
		}
		r, err := results.ResolveID(b, args[0])
		if err != nil {
			return err
		}
		return results.WriteShow(out, r)
	case "diff":
		if len(args) != 2 {
			return fmt.Errorf("diff: want exactly two run IDs")
		}
		a, err := results.ResolveID(b, args[0])
		if err != nil {
			return err
		}
		r, err := results.ResolveID(b, args[1])
		if err != nil {
			return err
		}
		return results.WriteDiff(out, a, r)
	case "trend":
		return results.WriteTrend(out, b, kind, metric)
	case "blob":
		if len(args) != 1 {
			return fmt.Errorf("blob: want exactly one blob address")
		}
		data, err := b.GetBlob(args[0])
		if err != nil {
			return err
		}
		_, err = out.Write(data)
		return err
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}
