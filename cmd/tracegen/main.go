// Command tracegen generates a link-corruption trace following Appendix D:
// per-link exponential onset times (Weibull β=1, MTTF 10,000h) with loss
// rates drawn from Table 1, written as CSV (seconds, link id, loss rate).
//
// Usage:
//
//	tracegen [-links 98304] [-days 365] [-seed 1] [-o trace.csv]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"linkguardian/internal/failtrace"
)

func main() {
	links := flag.Int("links", 98304, "number of optical links")
	days := flag.Int("days", 365, "trace horizon in days")
	seed := flag.Int64("seed", 1, "generator seed")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	horizon := time.Duration(*days) * 24 * time.Hour
	trace := failtrace.Generate(rand.New(rand.NewSource(*seed)), *links, horizon)

	w := bufio.NewWriter(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	defer w.Flush()

	fmt.Fprintf(w, "# corruption trace: %d links, %dd horizon, %d events (expected %.0f)\n",
		*links, *days, len(trace), failtrace.ExpectedEvents(*links, horizon))
	fmt.Fprintln(w, "seconds,link,loss_rate")
	for _, e := range trace {
		fmt.Fprintf(w, "%.0f,%d,%.3e\n", e.At.Seconds(), e.LinkID, e.LossRate)
	}
}
