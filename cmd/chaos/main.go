// Command chaos runs fault-injection scenarios against the LinkGuardian
// protocol with online invariant checking, and prints an invariant/violation
// report. It exits non-zero if any invariant fired.
//
// Usage:
//
//	chaos -list                         list the curated scenarios
//	chaos -scenario flap [-seed 1]      run one curated scenario
//	chaos -gen 17 [-seed 1]             run generated scenario #17 of the seed
//	chaos -soak 200 [-seed 1] [-workers 8]
//	                                    sweep generated scenarios in parallel
//
// A failing soak scenario is reproduced exactly by rerunning its index with
// the same master seed: chaos -gen <i> -seed <master>.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"linkguardian/internal/chaos"
	"linkguardian/internal/parallel"
)

func main() {
	list := flag.Bool("list", false, "list curated scenarios and exit")
	scenario := flag.String("scenario", "", "curated scenario name to run")
	gen := flag.Int("gen", -1, "generated scenario index to run")
	soak := flag.Int("soak", 0, "number of generated scenarios to sweep")
	seed := flag.Int64("seed", 1, "scenario seed (soak/gen: master seed)")
	workers := flag.Int("workers", 0, "soak worker count (0 = all cores)")
	flag.Parse()

	switch {
	case *list:
		for _, name := range chaos.Names() {
			fmt.Println(name)
		}

	case *scenario != "":
		sc, ok := chaos.Named(*scenario, *seed)
		if !ok {
			log.Fatalf("unknown scenario %q (try -list)", *scenario)
		}
		run(sc)

	case *gen >= 0:
		run(chaos.GenScenario(*seed, *gen))

	case *soak > 0:
		parallel.SetWorkers(*workers)
		res := chaos.Soak(*seed, *soak)
		fmt.Print(res)
		if len(res.Failures()) > 0 {
			fmt.Printf("reproduce a failure with: chaos -gen <i> -seed %d\n", *seed)
			os.Exit(1)
		}

	default:
		flag.Usage()
		os.Exit(2)
	}
}

func run(sc chaos.Scenario) {
	fmt.Printf("scenario %s seed=%d rate=%v frame=%dB load=%.2f window=%v steps=%d\n",
		sc.Name, sc.Seed, sc.Rate, sc.FrameSize, sc.LoadFrac, sc.Window, len(sc.Steps))
	for _, s := range sc.Steps {
		fmt.Printf("  step %v\n", s)
	}
	r := chaos.RunScenario(sc)
	fmt.Println(r)
	if r.Failed() {
		os.Exit(1)
	}
}
