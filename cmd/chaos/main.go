// Command chaos runs fault-injection scenarios against the LinkGuardian
// protocol with online invariant checking, and prints an invariant/violation
// report. It exits non-zero if any invariant fired.
//
// Usage:
//
//	chaos -list                         list the curated scenarios
//	chaos -scenario flap [-seed 1]      run one curated scenario
//	chaos -gen 17 [-seed 1]             run generated scenario #17 of the seed
//	chaos -soak 200 [-seed 1] [-workers 8]
//	                                    sweep generated scenarios in parallel
//	chaos -scenario spike -fabric 4 [-shards 4]
//	                                    run one scenario on every segment of a
//	                                    multi-segment fabric (sharded engine)
//	chaos -families 6 [-seed 1]         sweep the composite fault families
//	                                    (corrupt+congest, asym, correlated)
//	chaos -attrib 10 [-attrib-multi 4] [-attrib-min 0.9]
//	                                    007-style drop-cause attribution soak;
//	                                    exits non-zero if single-culprit top-1
//	                                    accuracy falls below -attrib-min
//
// A failing soak scenario is reproduced exactly by rerunning its index with
// the same master seed: chaos -gen <i> -seed <master>.
//
// -artifacts <dir> arms the flight recorder: every failing scenario dumps
// its trace-ring tail (JSONL + Chrome trace_event), metrics snapshot and
// violation summary into a subdirectory keyed by scenario name, index and
// seed. -trace/-metrics-out write the trace and metrics of a single run
// (-scenario/-gen) whether or not it fails.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"linkguardian/internal/chaos"
	"linkguardian/internal/obs"
	"linkguardian/internal/parallel"
	"linkguardian/internal/results"
)

func main() {
	list := flag.Bool("list", false, "list curated scenarios and exit")
	scenario := flag.String("scenario", "", "curated scenario name to run")
	gen := flag.Int("gen", -1, "generated scenario index to run")
	soak := flag.Int("soak", 0, "number of generated scenarios to sweep")
	families := flag.Int("families", 0, "composite-family scenarios to sweep per family")
	attrib := flag.Int("attrib", 0, "single-culprit attribution scenarios to sweep")
	attribMulti := flag.Int("attrib-multi", 0, "correlated multi-culprit attribution scenarios (reported, not gated)")
	attribMin := flag.Float64("attrib-min", 0.9, "minimum single-culprit top-1 accuracy")
	seed := flag.Int64("seed", 1, "scenario seed (soak/gen: master seed)")
	workers := flag.Int("workers", 0, "soak worker count (0 = all cores)")
	fabric := flag.Int("fabric", 0, "run -scenario on an N-segment fabric (sharded engine)")
	shards := flag.Int("shards", 1, "fabric: concurrent shard executions (never changes results)")
	artifacts := flag.String("artifacts", "", "flight-recorder directory for failing scenarios")
	resultsDir := flag.String("results-dir", "", "results store directory: run reports ingest as content-hashed runs and failing-scenario flight-recorder dumps register as content-addressed blobs keyed by scenario-index-seed (replaces -artifacts directory dumps)")
	tracePath := flag.String("trace", "", "single run: write the protected link's trace (.jsonl = JSONL, else Chrome trace_event)")
	traceCap := flag.Int("trace-cap", 0, "trace ring capacity (0 = default 2048)")
	metricsOut := flag.String("metrics-out", "", "single run: write the final metrics snapshot as JSON")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile")
	memprofile := flag.String("memprofile", "", "write a heap profile")
	flag.Parse()

	stopProf, err := obs.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		log.Fatal(err)
	}
	opts := chaos.RunOpts{
		ArtifactDir: *artifacts,
		TraceCap:    *traceCap,
		Index:       -1,
		KeepTrace:   *tracePath != "",
	}
	var store *results.Store
	if *resultsDir != "" {
		store, err = results.Open(*resultsDir)
		if err != nil {
			log.Fatal(err)
		}
		opts.Sink = store
	}
	// exit drains the results batcher before terminating — os.Exit skips
	// deferred calls, so every path below must leave through here.
	exit := func(code int) {
		if store != nil {
			if err := store.Close(); err != nil {
				log.Print(err)
				if code == 0 {
					code = 1
				}
			}
		}
		os.Exit(code)
	}

	switch {
	case *list:
		for _, name := range chaos.Names() {
			fmt.Println(name)
		}

	case *scenario != "":
		sc, ok := chaos.Named(*scenario, *seed)
		if !ok {
			log.Fatalf("unknown scenario %q (try -list)", *scenario)
		}
		if *fabric > 1 {
			exit(runFabric(sc, *fabric, *shards, *metricsOut, stopProf))
		}
		exit(run(sc, opts, *tracePath, *metricsOut, store, stopProf))

	case *gen >= 0:
		opts.Index = *gen
		exit(run(chaos.GenScenario(*seed, *gen), opts, *tracePath, *metricsOut, store, stopProf))

	case *soak > 0:
		parallel.SetWorkers(*workers)
		res := chaos.SoakWith(*seed, *soak, opts)
		finishProfiles(stopProf)
		fmt.Print(res)
		for _, r := range res.Failures() {
			if r.Artifact != "" {
				fmt.Printf("artifact: %s\n", r.Artifact)
			}
		}
		ingestReports(store, "soak", res.Reports)
		if len(res.Failures()) > 0 {
			fmt.Printf("reproduce a failure with: chaos -gen <i> -seed %d\n", *seed)
			exit(1)
		}

	case *families > 0:
		parallel.SetWorkers(*workers)
		res := chaos.FamilySoakWith(*seed, *families, opts)
		finishProfiles(stopProf)
		fmt.Print(res)
		for _, r := range res.Failures() {
			if r.Artifact != "" {
				fmt.Printf("artifact: %s\n", r.Artifact)
			}
		}
		if store != nil {
			var all []*chaos.Report
			for _, fam := range res.Families {
				all = append(all, fam.Reports...)
			}
			ingestReports(store, "families", all)
		}
		if len(res.Failures()) > 0 {
			exit(1)
		}

	case *attrib > 0 || *attribMulti > 0:
		parallel.SetWorkers(*workers)
		res := chaos.AttribSoak(*seed, *attrib, *attribMulti)
		finishProfiles(stopProf)
		fmt.Print(res)
		if rate := res.Top1Rate(); *attrib > 0 && rate < *attribMin {
			fmt.Printf("FAIL: single-culprit top-1 accuracy %.3f < %.3f\n", rate, *attribMin)
			exit(1)
		}

	default:
		flag.Usage()
		exit(2)
	}
	exit(0)
}

// reportRun converts one scenario report into a results run: the full
// metrics snapshot plus the report's headline counters, content-hashed so
// reruns of the same scenario and seed deduplicate.
func reportRun(r *chaos.Report, index int) *results.Run {
	name := r.Scenario
	if index >= 0 {
		name = fmt.Sprintf("%s-%04d", name, index)
	}
	run := results.FromSnapshot("chaos", name, map[string]string{
		"seed": fmt.Sprint(r.Seed),
	}, r.Metrics)
	run.Source = "cmd/chaos"
	quiesced := 0.0
	if r.Quiesced {
		quiesced = 1
	}
	run.Records = append(run.Records,
		results.Record{Name: "report.tx_unique", Value: float64(r.TxUnique), Unit: "count"},
		results.Record{Name: "report.forwarded", Value: float64(r.Forwarded), Unit: "count"},
		results.Record{Name: "report.outstanding", Value: float64(r.Outstanding), Unit: "count"},
		results.Record{Name: "report.unrecovered", Value: float64(r.Unrecovered), Unit: "count"},
		results.Record{Name: "report.violations", Value: float64(len(r.Violations)), Unit: "count"},
		results.Record{Name: "report.quiesced", Value: quiesced},
	)
	return run
}

// ingestReports streams every report of a sweep through the results
// batcher (no-op without a store).
func ingestReports(store *results.Store, sweep string, reports []*chaos.Report) {
	if store == nil {
		return
	}
	runs := make([]*results.Run, len(reports))
	for i, r := range reports {
		runs[i] = reportRun(r, i)
	}
	added, err := store.AddAll(runs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("results: %s ingested %d run(s) (%d new)\n", sweep, len(runs), added)
}

func run(sc chaos.Scenario, opts chaos.RunOpts, tracePath, metricsOut string, store *results.Store, stopProf func() error) int {
	fmt.Printf("scenario %s seed=%d rate=%v frame=%dB load=%.2f window=%v steps=%d\n",
		sc.Name, sc.Seed, sc.Rate, sc.FrameSize, sc.LoadFrac, sc.Window, len(sc.Steps))
	for _, s := range sc.Steps {
		fmt.Printf("  step %v\n", s)
	}
	r := chaos.RunScenarioOpts(sc, opts)
	finishProfiles(stopProf)
	if tracePath != "" {
		if err := obs.WriteTraceFile(tracePath, r.Trace); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trace: %d events -> %s\n", len(r.Trace), tracePath)
	}
	if metricsOut != "" {
		if err := obs.WriteMetricsFile(metricsOut, r.Metrics); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println(r)
	if store != nil {
		ack := store.Add(reportRun(r, opts.Index))
		if ack.Err != nil {
			log.Fatal(ack.Err)
		}
		fmt.Printf("results: run %s (new=%v)\n", ack.ID, ack.Added)
	}
	if r.Failed() {
		if r.Artifact != "" {
			fmt.Printf("artifact: %s\n", r.Artifact)
		}
		return 1
	}
	return 0
}

func runFabric(sc chaos.Scenario, nsegs, shards int, metricsOut string, stopProf func() error) int {
	fmt.Printf("scenario %s seed=%d rate=%v frame=%dB load=%.2f window=%v steps=%d fabric=%d shards=%d\n",
		sc.Name, sc.Seed, sc.Rate, sc.FrameSize, sc.LoadFrac, sc.Window, len(sc.Steps), nsegs, shards)
	fr := chaos.RunFabric(sc, nsegs, shards)
	finishProfiles(stopProf)
	if metricsOut != "" {
		if err := obs.WriteMetricsFile(metricsOut, fr.Metrics); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println(fr)
	if fr.Failed() {
		return 1
	}
	return 0
}

func finishProfiles(stop func() error) {
	if err := stop(); err != nil {
		log.Fatal(err)
	}
}
