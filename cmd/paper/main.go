// Command paper regenerates every table and figure of the LinkGuardian
// paper's evaluation on the simulated testbed and prints the same rows and
// series the paper reports.
//
// Usage:
//
//	paper [-only fig8,table3,...] [-scale 0.1] [-workers 0]
//	      [-metrics-out metrics.json] [-trace trace.json]
//	      [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// Experiment ids: fig1 fig2 fig8 fig9 fig10 fig11 fig12 fig13 fig14 fig15
// fig16 fig19 fig20 fig21 table1 table2 table3 table4, plus the extension
// experiments designspace and workload (run only when named explicitly).
// By default all paper figures run. -scale multiplies trial counts and
// durations (1.0 = the scaled-down defaults documented in EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"linkguardian/internal/core"
	"linkguardian/internal/experiments"
	"linkguardian/internal/obs"
	"linkguardian/internal/parallel"
	"linkguardian/internal/results"
	"linkguardian/internal/simtime"
	"linkguardian/internal/workload"
)

func main() {
	only := flag.String("only", "", "comma-separated experiment ids (default: all)")
	scale := flag.Float64("scale", 1.0, "scale factor for trial counts and durations")
	workers := flag.Int("workers", 0, "parallel worker count (0 = all cores); results are identical at any setting")
	segments := flag.Int("segments", 4, "fabric segments for the opt-in fabric experiment")
	shards := flag.Int("shards", 1, "concurrent shard executions for the fabric experiment; results are identical at any setting")
	metricsOut := flag.String("metrics-out", "", "write the Figure 8 grid's merged metrics snapshot as JSON (runs the grid if not selected); byte-identical at any -workers")
	resultsDir := flag.String("results-dir", "", "stream the Figure 8 grid's per-cell runs into the results store at this directory (runs the grid if not selected); content hashes are identical at any -workers")
	tracePath := flag.String("trace", "", "write the canonical stress cell's link trace (.jsonl = JSONL, else Chrome trace_event)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile")
	memprofile := flag.String("memprofile", "", "write a heap profile")
	flag.Parse()
	parallel.SetWorkers(*workers)

	stopProf, err := obs.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}
	run := func(id string) bool { return len(want) == 0 || want[id] }

	if run("fig1") {
		figure1()
	}
	if run("fig2") {
		figure2()
	}
	if run("table1") {
		table1()
	}
	var fig8 []experiments.StressResult
	if run("fig8") || run("fig14") || run("fig19") || run("table4") || *metricsOut != "" || *resultsDir != "" {
		fig8 = figure8Family(*scale, run)
	}
	if run("fig9") {
		figure9()
	}
	if run("fig10") {
		fcts("Figure 10: top FCTs, 143B single-packet flows, 100G, 1e-3 loss",
			experiments.Figure10(scaleInt(20000, *scale)))
	}
	if run("fig11") {
		fcts("Figure 11: top FCTs, 24,387B (17-packet) flows, 100G, 1e-3 loss",
			experiments.Figure11(scaleInt(12000, *scale)))
	}
	if run("fig12") {
		fcts("Figure 12: top FCTs, 2MB DCTCP flows, 100G, 1e-3 loss",
			experiments.Figure12(scaleInt(1500, *scale)))
	}
	if run("fig13") {
		figure13(*scale)
	}
	if run("table2") {
		table2(*scale)
	}
	if run("table3") {
		table3()
	}
	if run("fig15") || run("fig16") {
		fleet(*scale)
	}
	if run("fig20") {
		figure20()
	}
	if run("fig21") {
		figure21()
	}
	// Extension experiments are opt-in: they run only when named.
	if want["designspace"] {
		designSpace(*scale)
	}
	if want["workload"] {
		workloadFCT(*scale)
	}
	if want["fabric"] {
		fabricFCT(*scale, *segments, *shards)
	}
	if want["tracks"] {
		tracksAblation(*scale)
	}

	if *metricsOut != "" {
		// Merge the grid's per-cell snapshots in row-major cell order — the
		// same left-fold at any worker count, so the file is byte-identical.
		snaps := make([]obs.Snapshot, len(fig8))
		for i, r := range fig8 {
			snaps[i] = r.Metrics
		}
		if err := obs.WriteMetricsFile(*metricsOut, obs.MergeSnapshots(snaps...)); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *resultsDir != "" {
		if err := ingestFig8(*resultsDir, *scale, fig8); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *tracePath != "" {
		// The canonical trace cell: 100G, 1e-3 loss, Ordered mode.
		o := experiments.DefaultStressOpts()
		o.TraceCap = 4096
		res := experiments.RunStress(simtime.Rate100G, 1e-3, core.Ordered, o)
		if err := obs.WriteTraceFile(*tracePath, res.Trace); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if err := stopProf(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// ingestFig8 streams one run per Figure 8 grid cell through the results
// batcher: every protocol counter of the cell's metrics snapshot plus the
// headline stress metrics become records, content-hashed so a re-run of the
// same configuration deduplicates. -workers never appears in the config and
// snapshots are worker-invariant, so the store content is too.
func ingestFig8(dir string, scale float64, fig8 []experiments.StressResult) error {
	store, err := results.Open(dir)
	if err != nil {
		return err
	}
	cfg := map[string]string{"scale": fmt.Sprintf("%g", scale)}
	runs := make([]*results.Run, 0, len(fig8))
	for _, r := range fig8 {
		name := fmt.Sprintf("fig8/%v-loss%.0e-%v", r.Rate, r.LossRate, r.Mode)
		run := results.FromSnapshot("paper", name, cfg, r.Metrics)
		run.Source = "cmd/paper"
		run.Records = append(run.Records,
			results.Record{Name: "eff_loss_observed", Value: r.EffLossObserved},
			results.Record{Name: "eff_loss_analytic", Value: r.EffLossAnalytic},
			results.Record{Name: "eff_speed_frac", Value: r.EffSpeedFrac},
			results.Record{Name: "packets_sent", Value: float64(r.PacketsSent), Unit: "count"},
			results.Record{Name: "recirc_tx_frac", Value: r.RecircTx},
			results.Record{Name: "recirc_rx_frac", Value: r.RecircRx},
		)
		runs = append(runs, run)
	}
	added, err := store.AddAll(runs)
	if cerr := store.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Println(results.IngestSummary(dir, len(runs), added))
	return nil
}

// designSpace and workloadFCT are extensions beyond the paper's figures
// (see EXPERIMENTS.md); they run only when requested via -only.

// tracksAblation crosses end-host fast recovery (T-RACKs-style ~100µs
// RTOmin) with link protection under i.i.d. and bursty corruption: does a
// faster end-host timer substitute for link-local retransmission?
func tracksAblation(scale float64) {
	header("T-RACKs ablation: end-host fast recovery vs link-local retransmission, 24,387B DCTCP, 1e-3 loss")
	for _, r := range experiments.TracksAblation(scaleInt(4000, scale)) {
		fmt.Println(r)
	}
}

func designSpace(scale float64) {
	header("Design space (Figure 3): e2e ReTx vs e2e duplication vs LinkGuardian")
	for _, r := range experiments.DesignSpace(scaleInt(12000, scale)) {
		fmt.Println(r)
	}
}

// fabricFCT is the multi-segment fabric FCT experiment on the sharded
// conservative engine: every segment runs 24,387B DCTCP flows over its own
// lossy protected link while cross-segment transit traffic rides the ring
// of cross-shard links. shards caps concurrent shard execution and never
// changes a byte of the output.
func fabricFCT(scale float64, segments, shards int) {
	header(fmt.Sprintf("Fabric FCT: %d segments on the sharded engine (shards cap %d), 24,387B DCTCP, 1e-3 loss", segments, shards))
	opts := experiments.DefaultFCTOpts(24387)
	opts.Trials = scaleInt(2000, scale)
	for _, prot := range []experiments.Protection{experiments.NoLoss, experiments.LossOnly, experiments.LG} {
		results := experiments.RunFabricFCT(experiments.TransDCTCP, prot, opts, segments, shards, 0.05)
		for i, r := range results {
			fmt.Printf("s%d %v\n", i, r)
		}
	}
}

func workloadFCT(scale float64) {
	header("Workload-driven FCT: Google all-RPC size mix, 100G, 1e-3 loss")
	trials := scaleInt(8000, scale)
	for _, prot := range []experiments.Protection{experiments.NoLoss, experiments.LossOnly, experiments.LG} {
		r := experiments.RunWorkloadFCT(workload.GoogleAllRPC, prot, trials, 1)
		fmt.Printf("%-8v p50=%8.1fµs p99=%8.1fµs p99.9=%8.1fµs (n=%d)\n",
			r.Protection, r.FCTs.Percentile(50), r.FCTs.Percentile(99), r.FCTs.Percentile(99.9), r.Trials)
	}
}

func scaleInt(n int, s float64) int {
	v := int(float64(n) * s)
	if v < 100 {
		v = 100
	}
	return v
}

func header(s string) {
	fmt.Printf("\n=== %s ===\n", s)
}

func figure1() {
	header("Figure 1: packet loss rate vs optical attenuation (1518B frames)")
	series := experiments.Figure1()
	var names []string
	for n := range series {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Printf("%8s", "dB")
	for _, n := range names {
		fmt.Printf("  %18s", n)
	}
	fmt.Println()
	for i := range series[names[0]] {
		fmt.Printf("%8.1f", series[names[0]][i].AttenDB)
		for _, n := range names {
			fmt.Printf("  %18.3e", series[n][i].LossRate)
		}
		fmt.Println()
	}
}

func figure2() {
	header("Figure 2: flow-size CDFs of datacenter workloads")
	series := experiments.Figure2()
	var names []string
	for n := range series {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pts := series[n]
		fmt.Printf("%-18s", n)
		for _, anchor := range []float64{100, 1024, 1500, 10e3, 100e3, 1e6} {
			// Nearest series point at or above the anchor.
			cdf := pts[len(pts)-1][1]
			for _, p := range pts {
				if p[0] >= anchor {
					cdf = p[1]
					break
				}
			}
			fmt.Printf("  P(<=%6.0fB)=%.2f", anchor, cdf)
		}
		fmt.Println()
	}
}

func table1() {
	header("Table 1: corruption loss-rate buckets (generator validation)")
	for _, c := range experiments.Table1(200000, 1) {
		fmt.Println(c)
	}
}

func figure8Family(scale float64, run func(string) bool) []experiments.StressResult {
	header("Figure 8: effective loss rate and effective link speed (stress test)")
	opts := experiments.DefaultStressOpts()
	opts.Duration = simtime.Duration(float64(opts.Duration) * scale)
	results := experiments.Figure8(opts)
	for _, r := range results {
		fmt.Println(r)
	}
	if run("fig14") {
		header("Figure 14: packet buffer usage (KB; min/p25/p50/p75/max)")
		for _, r := range results {
			fmt.Printf("%4s loss=%.0e %-5s TX[%s] RX[%s]\n", r.Rate, r.LossRate, r.Mode, kb(r.TxBuf), kb(r.RxBuf))
		}
	}
	if run("fig19") {
		header("Figure 19: retransmission delay distribution (µs)")
		for _, r := range results {
			if r.Mode != core.Ordered || r.RetxDelays.N() == 0 {
				continue
			}
			fmt.Printf("%4s loss=%.0e p50=%.2f p90=%.2f p99=%.2f max=%.2f (n=%d)\n",
				r.Rate, r.LossRate, r.RetxDelays.Percentile(50), r.RetxDelays.Percentile(90),
				r.RetxDelays.Percentile(99), r.RetxDelays.Max(), r.RetxDelays.N())
		}
	}
	if run("table4") {
		header("Table 4: recirculation overhead (% of pipeline capacity)")
		for _, r := range results {
			fmt.Printf("%4s loss=%.0e %-5s TX=%.3f%% RX=%.3f%%\n",
				r.Rate, r.LossRate, r.Mode, r.RecircTx*100, r.RecircRx*100)
		}
	}
	return results
}

func kb(s interface{ String() string }) string { return s.String() }

func figure9() {
	header("Figure 9: DCTCP timeline with corruption onset and LG activation")
	a, b := experiments.Figure9()
	fmt.Printf("9a (backpressure on):  %v\n", a)
	fmt.Printf("9b (backpressure off): %v\n", b)
	fmt.Println("9a time series (ms, Gbps, qdepthKB, rxbufKB, e2eReTx):")
	for i, p := range a.Points {
		if i%10 != 0 {
			continue
		}
		fmt.Printf("  t=%6.1f  %6.2f  %7.1f  %6.1f  %d\n",
			p.At.Seconds()*1e3, p.SendGbps, float64(p.QDepth)/1024, float64(p.RxBuf)/1024, p.E2EReTx)
	}
}

func fcts(title string, results []experiments.FCTResult) {
	header(title)
	for _, r := range results {
		fmt.Println(r)
	}
}

func figure13(scale float64) {
	header("Figure 13: classification of affected 24,387B DCTCP flows (LG_NB)")
	fmt.Println(experiments.Figure13(scaleInt(12000, scale)))
}

func table2(scale float64) {
	header("Table 2: mechanism ablation, top FCT percentiles (µs), 24,387B DCTCP")
	for _, r := range experiments.Table2(scaleInt(12000, scale)) {
		fmt.Println(r)
	}
}

func table3() {
	header("Table 3: TCP CUBIC goodput (Gb/s) on a 10G link")
	fmt.Printf("%-15s", "loss rate ->")
	for _, q := range experiments.Table3LossRates {
		fmt.Printf("  %5.0e", q)
	}
	fmt.Println()
	for _, r := range experiments.Table3(experiments.DefaultTable3Opts()) {
		fmt.Println(r)
	}
}

func fleet(scale float64) {
	header("Figures 15/16: large-scale deployment (CorrOpt vs LinkGuardian+CorrOpt)")
	opts := experiments.DefaultFleetOpts()
	if scale < 1 {
		opts.Horizon = time.Duration(float64(opts.Horizon) * scale)
	}
	for _, fc := range experiments.Figures15And16(opts) {
		fmt.Println(fc)
		v, c := fc.Figure15Window(30*24*time.Hour, 7*24*time.Hour)
		fmt.Println("  1-week snapshot (day, penaltyV, penaltyC, leastPathsV, leastPathsC, leastCapV, leastCapC):")
		for i := range v {
			if i%4 != 0 {
				continue
			}
			fmt.Printf("    %5.1f  %9.3e  %9.3e  %5.3f  %5.3f  %6.4f  %6.4f\n",
				v[i].At.Hours()/24, v[i].TotalPenalty, c[i].TotalPenalty,
				v[i].LeastPaths, c[i].LeastPaths, v[i].LeastPodCap, c[i].LeastPodCap)
		}
	}
}

func figure20() {
	header("Figure 20: consecutive packets lost (CDF), 1% and 5% loss")
	for _, loss := range []float64{0.01, 0.05} {
		for _, bursty := range []bool{false, true} {
			pts := experiments.Figure20(loss, bursty, 5_000_000, 1)
			kind := "iid"
			if bursty {
				kind = "bursty"
			}
			fmt.Printf("loss=%.0f%% %-6s 99.9999%% covered by runs <= %d:",
				loss*100, kind, experiments.MaxRunCovered(pts, 0.999999))
			for _, p := range pts {
				if p.Run > 8 {
					break
				}
				fmt.Printf("  %d:%.6f", p.Run, p.CDF)
			}
			fmt.Println()
		}
	}
}

func figure21() {
	header("Figure 21: CUBIC (25G) and BBR (10G) timelines")
	cubic, bbr := experiments.Figure21()
	fmt.Printf("21a: %v\n", cubic)
	fmt.Printf("21b: %v\n", bbr)
}

func init() {
	// Keep usage output deterministic for tests.
	flag.CommandLine.SetOutput(os.Stderr)
}
