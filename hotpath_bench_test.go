package bench

// Hot-path benchmarks: the per-packet cost of the emulated dataplane
// itself, as opposed to the paper-figure benchmarks which measure whole
// experiments. BenchmarkHotPath_PktsPerSec drives the Figure 7 inner
// testbed at line rate and reports sustained simulated packets per second
// of wall-clock time — the number scripts/bench.sh records into
// BENCH_4.json and the CI benchmark-smoke job guards (allocs/op must not
// regress against the committed baseline).

import (
	"testing"

	"linkguardian/internal/core"
	"linkguardian/internal/experiments"
	"linkguardian/internal/simnet"
	"linkguardian/internal/simtime"
)

// hotPathSlice is the simulated time advanced per benchmark iteration. At
// ~98% of 100G line rate with 1500B frames this is ~8k packets per
// iteration — large enough that per-iteration harness overhead vanishes.
const hotPathSlice = simtime.Millisecond

// hotPathLoad keeps the offered load just under line rate: the LinkGuardian
// header and retransmission copies add a fraction of a percent of overhead,
// and a benchmark run at exactly 100% would measure an overload regime —
// queues (and the live packet population) growing without bound — instead
// of the steady state.
const hotPathLoad = 0.98

func runHotPath(b *testing.B, loss float64, mode core.Mode) {
	cfg := core.NewConfig(simtime.Rate100G, loss)
	cfg.Mode = mode
	tb := experiments.NewTestbed(1, simtime.Rate100G, cfg)
	tb.SetLoss(loss)
	tb.LG.Enable()
	pkts, _ := tb.CountReceived()
	// A real switch has a finite shared buffer. The generator injects
	// straight into the egress queue and is oblivious to PFC, so while
	// Algorithm 2 backpressure holds the queue paused the backlog would
	// otherwise grow without bound — and a growing live-packet population
	// shows up as allocation, hiding the hot path's zero-alloc property.
	tb.Link.A().Port.Q(simnet.PrioNormal).MaxBytes = 256 << 10
	gen := tb.StartGeneratorAt(1500, hotPathLoad)
	defer gen.Stop()

	// Warm up: fill queues, pools and the event heap to steady state (the
	// lossy variant needs several slices for the egress backlog to hit the
	// buffer cap and for the packet pool and reordering buffer to reach
	// their high-water marks across enough loss events).
	for i := 0; i < 10; i++ {
		tb.Sim.RunFor(hotPathSlice)
	}
	start := *pkts

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Sim.RunFor(hotPathSlice)
	}
	b.StopTimer()

	delivered := *pkts - start
	if delivered == 0 {
		b.Fatal("hot path delivered no packets")
	}
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(delivered)/secs, "pkts/sec")
	}
	b.ReportMetric(float64(delivered)/float64(b.N), "pkts/op")
}

// BenchmarkHotPath_PktsPerSec is the end-to-end dataplane benchmark:
// h1 → sw2 → (protected 100G link) → sw6 → h2 at line rate, LinkGuardian
// Ordered. The lossy variant exercises the full recovery machinery — loss
// notifications, recirculating Tx buffer, retransmission, reordering —
// at the paper's canonical 1e-3 corruption rate.
func BenchmarkHotPath_PktsPerSec(b *testing.B) {
	b.Run("clean", func(b *testing.B) { runHotPath(b, 0, core.Ordered) })
	b.Run("lossy-1e-3", func(b *testing.B) { runHotPath(b, 1e-3, core.Ordered) })
}
